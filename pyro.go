// Package pyro is a cost-based query optimizer and execution engine built
// around order optimization: it reproduces the techniques of
// "Reducing Order Enforcement Cost in Complex Query Plans" (Guravannavar,
// Sudarshan, Diwan, Sobhan Babu) — partial-sort enforcers, favorable-order
// driven interesting-order selection, and 2-approximate refinement of join
// sort orders.
//
// A Database bundles a simulated block device, a catalog and default
// resources. Tables are bulk-loaded, optionally clustered and indexed with
// covering secondary indices; queries are assembled with the Query builder,
// optimized under a selectable heuristic (PYRO, PYRO-O⁻, PYRO-P, PYRO-O,
// PYRO-E) and executed on the Volcano-style iterator engine:
//
//	db := pyro.Open(pyro.Config{})
//	db.CreateTable("t", []pyro.Column{{Name: "a", Type: pyro.Int64}, ...},
//	    pyro.ClusterOn("a"), rows)
//	q := db.Scan("t").Filter(pyro.Gt(pyro.Col("a"), pyro.Int(10))).
//	    OrderBy("a", "b")
//	plan, _ := db.Optimize(q)
//	cur, _ := db.Query(ctx, plan)
//	defer cur.Close()
//	for cur.Next() {
//	    var a, b int64
//	    cur.Scan(&a, &b)
//	}
//
// Query streams: under a pipelined partial-sort plan the first rows arrive
// before most of the input has been read, closing the cursor early
// abandons the unread remainder, and the context cancels execution even
// inside a long sort. Execute remains as a materialising convenience.
package pyro

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/cost"
	"pyro/internal/govern"
	"pyro/internal/logical"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/xsort"
)

// Type enumerates column types of the public API.
type Type uint8

// Column types.
const (
	Int64 Type = iota
	Float64
	String
	Bool
)

func (t Type) kind() types.Kind {
	switch t {
	case Int64:
		return types.KindInt
	case Float64:
		return types.KindFloat
	case String:
		return types.KindString
	case Bool:
		return types.KindBool
	}
	return types.KindNull
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
	// Width is the average width in bytes used for cost estimation
	// (0 picks a default per type).
	Width int
}

// Config sizes a Database.
type Config struct {
	// PageSize is the simulated disk block size (default 4096, matching
	// the paper's setup).
	PageSize int
	// SortMemoryBlocks is M, the sort memory budget in blocks (default
	// 10000 blocks = 40 MB at the default page size, as in the paper).
	SortMemoryBlocks int
	// SortParallelism bounds how many partial-sort segments an MRS
	// enforcer sorts concurrently (0 = GOMAXPROCS, 1 = serial).
	SortParallelism int
	// SortSpillParallelism bounds how many spill jobs — run-forming sorts
	// of an oversized sort's memory batches and run-reduction merges — run
	// concurrently per enforcer (0 = inherit SortParallelism, 1 = the
	// paper's serial spill algorithm). Spill files live in per-sort
	// storage arenas with lock-free I/O accounting, so I/O totals are
	// identical at every parallelism level.
	//
	// The optimizer's cost model also reads this knob: an explicitly
	// configured spill parallelism above 1 — this field, or an explicit
	// SortParallelism it would inherit at execution time — prices
	// external-sort merge passes as overlapped
	// (cost.Model.SpillParallelism), which can legitimately flip plan
	// choice toward sort-based operators on multi-core targets. With both
	// fields 0 the executor inherits GOMAXPROCS but pricing stays serial,
	// deliberately: plan choice must never depend on the machine the
	// optimizer happens to run on.
	SortSpillParallelism int
	// SortRunFormation selects how sort enforcers produce in-memory sorted
	// orders: RunFormationAdaptive (default) uses MSD radix partitioning
	// on the normalized keys where it pays, RunFormationRadix forces it,
	// RunFormationCompare pins the comparison sort. Result key order and
	// I/O are identical in every mode (rows tied on the entire ORDER BY
	// key may emit in a different relative order under a full sort — that
	// order was never guaranteed).
	SortRunFormation RunFormation
	// SortEntryLayout selects the spill-run representation of the sort
	// enforcers: EntryLayoutFlat (default) spills fixed-width key-prefix
	// entries alongside the payload tuples and merges them with the
	// radix-aware cascade, EntryLayoutFlatHeap keeps the flat runs but
	// merges with a plain comparison heap (the ablation arm), and
	// EntryLayoutTuple is the legacy tuple-only spill format. Result rows
	// and result order are identical in every mode; spill I/O shape and
	// merge comparison counts differ.
	SortEntryLayout EntryLayout

	// GlobalSortMemoryBlocks is the database-wide sort-memory pool, in
	// blocks, shared by all concurrently executing queries through the
	// sort-memory governor. Each query asks for SortMemoryBlocks; a lone
	// query is granted its full ask (making single-cursor execution
	// identical to the ungoverned engine), concurrent queries share the
	// pool by fair shares, and a query already spilling (observed through
	// its per-query I/O tap) is shrunk toward its fair share while others
	// wait. 0 defaults to SortMemoryBlocks — the pool admits one
	// full-budget sort's worth of memory in total. Negative disables the
	// governor: every query gets the static per-sort budget, as before.
	// Queries that override their budget with WithSortMemoryBlocks bypass
	// the governor entirely (the explicit value is taken literally, as
	// documented there).
	GlobalSortMemoryBlocks int
	// MinSortGrantBlocks is the smallest sort-memory grant the governor
	// will issue or shrink to (0 defaults to GlobalSortMemoryBlocks/256,
	// at least 1). Raising it bounds how far contention can squeeze a
	// query's sorts.
	MinSortGrantBlocks int
	// MaxConcurrentQueries bounds how many queries execute at once; excess
	// Query calls queue (cancellably) and report their wait in
	// ExecStats.QueuedTime. 0 means unlimited (no admission gate).
	MaxConcurrentQueries int
	// ExecBatchSize is the vectorized executor's chunk capacity: operators
	// that support the chunked protocol (scans, filters, projections,
	// unions, dedup, limit — and the inputs of sorts, aggregates and hash
	// joins) move batches of up to this many rows per call instead of one
	// tuple per call. Results, sort statistics and per-query I/O are
	// byte-identical at every setting; batching only removes per-row
	// interface-call and allocation overhead. 0 picks the default (1024);
	// 1 disables batching entirely and runs the exact legacy
	// row-at-a-time path. Per-query override: WithExecBatchSize.
	ExecBatchSize int
	// QueryTimeout bounds every query's wall-clock lifetime, measured from
	// the Query call (0 = unlimited). It rides the same abort path as
	// context cancellation — polled inside sort and spill loops, while
	// queued at the admission gate, and while blocked on a sort-memory
	// grant — and surfaces as context.DeadlineExceeded from Cursor.Err.
	// WithDeadline tightens it per query.
	QueryTimeout time.Duration
	// PlanCacheSize bounds the database's plan cache, which lets repeated
	// Optimize calls and WithRowTarget re-optimizations of the same query
	// shape skip the optimizer: entries are keyed by (logical query
	// signature, optimizer options, row-target band), so any option that
	// could change plan choice misses. 0 defaults to 256 entries; negative
	// disables caching.
	PlanCacheSize int
}

// RunFormation selects the sort enforcers' run-formation algorithm.
type RunFormation = xsort.RunFormation

// Run-formation modes.
const (
	RunFormationAdaptive = xsort.RunFormAdaptive
	RunFormationCompare  = xsort.RunFormCompare
	RunFormationRadix    = xsort.RunFormRadix
)

// EntryLayout selects the sort enforcers' spill-run representation.
type EntryLayout = xsort.EntryLayout

// Sort entry layouts.
const (
	EntryLayoutFlat     = xsort.LayoutFlat
	EntryLayoutFlatHeap = xsort.LayoutFlatHeap
	EntryLayoutTuple    = xsort.LayoutTuple
)

// Database is a self-contained engine instance.
type Database struct {
	disk *storage.Disk
	cat  *catalog.Catalog
	cfg  Config

	// Serving layer: shared across every concurrent query of this
	// database. gov arbitrates the global sort-memory pool (nil when
	// disabled), gate bounds concurrent queries (nil = unlimited), plans
	// caches optimization results (nil when disabled).
	gov   *govern.Governor
	gate  *govern.Gate
	plans *planCache
}

// Open creates an empty database.
func Open(cfg Config) *Database {
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	if cfg.SortMemoryBlocks <= 0 {
		cfg.SortMemoryBlocks = 10000
	}
	disk := storage.NewDisk(cfg.PageSize)
	db := &Database{disk: disk, cat: catalog.New(disk), cfg: cfg}
	if cfg.GlobalSortMemoryBlocks >= 0 {
		total := cfg.GlobalSortMemoryBlocks
		if total == 0 {
			total = cfg.SortMemoryBlocks
		}
		// Config errors are impossible here: total is positive and the min
		// grant non-negative by the clamps above.
		db.gov, _ = govern.New(govern.Config{
			TotalBlocks:    total,
			MinGrantBlocks: cfg.MinSortGrantBlocks,
		})
	}
	if cfg.MaxConcurrentQueries > 0 {
		db.gate, _ = govern.NewGate(cfg.MaxConcurrentQueries, 0)
	}
	cacheSize := cfg.PlanCacheSize
	if cacheSize == 0 {
		cacheSize = 256
	}
	db.plans = newPlanCache(cacheSize)
	return db
}

// ServingStats aggregates the database's serving-layer counters: the
// sort-memory governor, the admission gate and the plan cache.
type ServingStats struct {
	// Governor reports sort-memory grant activity. Zero when the governor
	// is disabled (GlobalSortMemoryBlocks < 0).
	Governor govern.Stats
	// Admission reports the concurrent-query gate. Zero when unlimited
	// (MaxConcurrentQueries == 0).
	Admission govern.GateStats
	// PlanCache reports optimizer-result reuse. Zero when disabled
	// (PlanCacheSize < 0).
	PlanCache PlanCacheStats
}

// ServingStats returns a snapshot of the serving layer's counters.
func (db *Database) ServingStats() ServingStats {
	var s ServingStats
	if db.gov != nil {
		s.Governor = db.gov.Stats()
	}
	if db.gate != nil {
		s.Admission = db.gate.Stats()
	}
	if db.plans != nil {
		s.PlanCache = db.plans.snapshot()
	}
	return s
}

// ClusterOn names the clustering order for CreateTable.
func ClusterOn(cols ...string) []string { return cols }

// Value converts a Go value to an engine datum. Supported: nil, int,
// int64, float64, string, bool.
func Value(v any) (types.Datum, error) {
	switch x := v.(type) {
	case nil:
		return types.Null, nil
	case int:
		return types.NewInt(int64(x)), nil
	case int64:
		return types.NewInt(x), nil
	case float64:
		return types.NewFloat(x), nil
	case string:
		return types.NewString(x), nil
	case bool:
		return types.NewBool(x), nil
	default:
		return types.Datum{}, fmt.Errorf("pyro: unsupported value type %T", v)
	}
}

// CreateTable bulk-loads a table. clusterOn may be nil (heap order). Rows
// are Go values converted via Value.
func (db *Database) CreateTable(name string, cols []Column, clusterOn []string, rows [][]any) error {
	tcols := make([]types.Column, len(cols))
	for i, c := range cols {
		tcols[i] = types.Column{Name: c.Name, Kind: c.Type.kind(), Width: c.Width}
	}
	schema := types.NewSchema(tcols...)
	data := make([]types.Tuple, len(rows))
	for i, r := range rows {
		if len(r) != len(cols) {
			return fmt.Errorf("pyro: row %d has %d values, table %q has %d columns", i, len(r), name, len(cols))
		}
		tup := make(types.Tuple, len(r))
		for j, v := range r {
			d, err := Value(v)
			if err != nil {
				return fmt.Errorf("pyro: row %d column %q: %w", i, cols[j].Name, err)
			}
			tup[j] = d
		}
		data[i] = tup
	}
	_, err := db.cat.CreateTable(name, schema, sortord.New(clusterOn...), data)
	return err
}

// CreateIndex materialises a covering secondary index: key columns in
// order, plus included non-key columns stored in the leaves.
func (db *Database) CreateIndex(indexName, tableName string, keyCols []string, include []string) error {
	tb, err := db.cat.Table(tableName)
	if err != nil {
		return err
	}
	_, err = db.cat.CreateIndex(indexName, tb, sortord.New(keyCols...), include)
	return err
}

// Heuristic re-exports the optimizer variants.
type Heuristic = core.Heuristic

// Heuristic variants (the paper's §6 names).
const (
	PYRO       = core.HeuristicArbitrary
	PYROOMinus = core.HeuristicFavorableExact
	PYROP      = core.HeuristicPostgres
	PYROO      = core.HeuristicFavorable
	PYROE      = core.HeuristicExhaustive
)

// OptimizeOption customises an Optimize call.
type OptimizeOption func(*core.Options)

// WithHeuristic selects the interesting-order heuristic (default PYRO-O).
// It sets only the heuristic; Optimize applies the heuristic's canonical
// defaults (PYRO and PYRO-O⁻ imply no partial-sort enforcers, only PYRO-O
// runs phase-2 refinement) once all options have run. The options of one
// Optimize call therefore compose order-independently, ablation flags set
// by other options survive on either side of WithHeuristic, and when
// WithHeuristic appears more than once the last heuristic wins outright.
func WithHeuristic(h Heuristic) OptimizeOption {
	return func(o *core.Options) { o.Heuristic = h }
}

// WithoutPartialSort disables partial-sort enforcers (ablation).
func WithoutPartialSort() OptimizeOption {
	return func(o *core.Options) { o.DisablePartialSort = true }
}

// WithoutPhase2 disables the §5.2.2 plan refinement (ablation).
func WithoutPhase2() OptimizeOption {
	return func(o *core.Options) { o.DisablePhase2 = true }
}

// WithoutHashJoin restricts plans to sort-based joins.
func WithoutHashJoin() OptimizeOption {
	return func(o *core.Options) { o.DisableHashJoin = true }
}

// WithoutHashAgg restricts plans to sort-based aggregation.
func WithoutHashAgg() OptimizeOption {
	return func(o *core.Options) { o.DisableHashAgg = true }
}

// Plan is an optimized physical plan bound to its database. It remembers
// the logical query and the options it was optimized under, so execution
// can re-plan it for a different consumption profile (WithRowTarget).
type Plan struct {
	db    *Database
	inner *core.Plan
	stats core.Stats
	node  logical.Node
	opts  core.Options
}

// Explain renders the plan tree with costs, cardinalities and sort orders.
// Every node shows both cost phases: cost= is the full-drain total, and
// startup= the blocking work before the node's first output row — under a
// pipelined partial-sort plan the root's startup sits far below its cost,
// while a blocking full-sort or hash plan shows the two nearly equal.
func (p *Plan) Explain() string { return p.inner.Format() }

// EstimatedCost returns the cost model's full-drain estimate in I/O units.
func (p *Plan) EstimatedCost() float64 { return p.inner.Cost.Total }

// EstimatedStartupCost returns the modeled blocking work before the plan's
// first row — the time-to-first-row side of the two-phase cost model.
func (p *Plan) EstimatedStartupCost() float64 { return p.inner.Cost.Startup }

// EstimatedPrefixCost returns the modeled cost of producing only the first
// k rows (EstimatedPrefixCost(N) equals EstimatedCost; a partial-sort plan
// is charged ⌈k·D/N⌉ segment sorts).
func (p *Plan) EstimatedPrefixCost(k int64) float64 { return p.inner.PrefixCost(k) }

// OptimizerStats returns counters from the optimization run.
func (p *Plan) OptimizerStats() core.Stats { return p.stats }

// Optimize plans a query. The default configuration is the paper's PYRO-O:
// favorable orders, partial sorts and phase-2 refinement enabled.
func (db *Database) Optimize(q *Query, opts ...OptimizeOption) (*Plan, error) {
	if q.err != nil {
		return nil, q.err
	}
	options := core.DefaultOptions(core.HeuristicFavorable)
	for _, o := range opts {
		o(&options)
	}
	// Fold in the final heuristic's implied defaults after every option has
	// run: explicit ablations OR onto them, so composition is
	// order-independent and only the last WithHeuristic matters.
	implied := core.DefaultOptions(options.Heuristic)
	options.DisablePartialSort = options.DisablePartialSort || implied.DisablePartialSort
	options.DisablePhase2 = options.DisablePhase2 || implied.DisablePhase2
	options.Model = cost.DefaultModel()
	options.Model.PageSize = db.cfg.PageSize
	options.Model.MemoryBlocks = int64(db.cfg.SortMemoryBlocks)
	// Governor-aware pricing: under contention the executor will not be
	// granted the full static budget, so price sorts at the grant the pool
	// would issue right now — fair share among live claimants. The model is
	// part of the plan-cache key, so plans optimized under different
	// contention levels cache separately and an uncontended replan is never
	// served a contention-shaped plan (or vice versa).
	if db.gov != nil {
		if expect := db.gov.ExpectedGrant(db.cfg.SortMemoryBlocks); expect > 0 {
			options.Model.MemoryBlocks = int64(expect)
		}
	}
	// Price the spill parallelism execution will actually use, but only
	// when it is explicitly configured: SortSpillParallelism, or the
	// SortParallelism it inherits from when unset. 0 means GOMAXPROCS at
	// execution time and stays serially priced (see Config).
	spillPar := db.cfg.SortSpillParallelism
	if spillPar == 0 {
		spillPar = db.cfg.SortParallelism
	}
	if spillPar > 1 {
		options.Model.SpillParallelism = spillPar
	}
	// Price the spill format execution will use: the legacy tuple layout
	// re-encodes keys on every merge read, the flat layouts carry entry
	// files instead (see cost.Model). Comparator-keyed sorts fall back to
	// the tuple layout at runtime regardless, but the optimizer cannot see
	// key shapes here and prices the configured intent.
	options.Model.TupleSpillLayout = db.cfg.SortEntryLayout == EntryLayoutTuple
	inner, stats, err := db.optimize(q.node, options)
	if err != nil {
		return nil, err
	}
	return &Plan{db: db, inner: inner, stats: stats, node: q.node, opts: options}, nil
}

// optimize runs the optimizer through the plan cache. The cache key is the
// query's full logical signature plus the complete (comparable) option set
// with the row target banded into power-of-two buckets; the optimizer is a
// pure function of exactly those inputs, so a hit returns the identical
// plan and optimizer stats the miss path would have computed (the one
// exception being row targets within one band, which deliberately share a
// plan). On a miss the optimizer runs at the actual requested row target —
// the first call per band behaves exactly like the uncached engine — and
// the result is stored under the band key. Cached plan trees are immutable
// and shared by reference.
func (db *Database) optimize(node logical.Node, options core.Options) (*core.Plan, core.Stats, error) {
	if db.plans == nil {
		res, err := core.Optimize(node, options)
		if err != nil {
			return nil, core.Stats{}, err
		}
		return res.Plan, res.Stats, nil
	}
	key := planKey{shape: logical.Signature(node), opts: options, band: rowTargetBand(options.RowTarget)}
	key.opts.RowTarget = 0 // the band carries it
	if plan, stats, ok := db.plans.get(key); ok {
		return plan, stats, nil
	}
	res, err := core.Optimize(node, options)
	if err != nil {
		return nil, core.Stats{}, err
	}
	db.plans.put(key, res.Plan, res.Stats)
	return res.Plan, res.Stats, nil
}

// Rows is a fully materialised query result.
type Rows struct {
	Columns []string
	Data    [][]any
}

// Execute compiles and runs a plan, materialising every result row. It is
// a thin wrapper over Query that drains the cursor, so it pays
// full-result materialisation and cannot stop the engine early or be
// cancelled — everything the streaming cursor exists to avoid.
//
// Deprecated: Use Query, which streams rows on demand, honors context
// cancellation, supports per-query execution options and reports per-query
// ExecStats. Execute is kept as a convenience for small results and for
// existing callers.
func (db *Database) Execute(p *Plan) (*Rows, error) {
	cur, err := db.Query(context.Background(), p)
	if err != nil {
		return nil, err
	}
	out := &Rows{Columns: cur.Columns(), Data: make([][]any, 0)}
	for cur.Next() {
		out.Data = append(out.Data, cur.Row())
	}
	if err := cur.Err(); err != nil {
		return nil, errors.Join(err, cur.Close())
	}
	return out, cur.Close()
}

func datumValue(d types.Datum) any {
	switch d.Kind() {
	case types.KindNull:
		return nil
	case types.KindInt:
		return d.Int()
	case types.KindFloat:
		return d.Float()
	case types.KindString:
		return d.Str()
	case types.KindBool:
		return d.Bool()
	}
	return nil
}

// IOStats is a snapshot of simulated disk activity.
type IOStats = storage.IOStats

// IOStats returns the disk's cumulative I/O counters.
func (db *Database) IOStats() IOStats { return db.disk.Stats() }

// Disk exposes the database's simulated block device. Chaos tooling uses
// the handle to install fault plans and temp-space quotas
// (storage.Disk.SetFaultPlan, SetTempQuotaPages) and to audit for leaked
// temp files and spill arenas; production paths never need it.
func (db *Database) Disk() *storage.Disk { return db.disk }

// ResetIOStats zeroes the disk's I/O counters (call before a measured run).
func (db *Database) ResetIOStats() { db.disk.ResetStats() }
