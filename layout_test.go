package pyro

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// layoutDB builds a workload whose ORDER BY must spill: 12k rows shuffled
// by a multiplicative hash, 512-byte pages, an 8-block sort budget.
func layoutDB(t *testing.T) *Database {
	t.Helper()
	db := Open(Config{PageSize: 512, SortMemoryBlocks: 8})
	rows := make([][]any, 12_000)
	for i := range rows {
		rows[i] = []any{int64(i), int64((i * 2654435761) % 12_000), fmt.Sprintf("pad-%d", i%97)}
	}
	if err := db.CreateTable("t", []Column{
		{Name: "a", Type: Int64},
		{Name: "b", Type: Int64},
		{Name: "s", Type: String},
	}, ClusterOn("a"), rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestEntryLayoutGoldenMatrix is the end-to-end pin of the fixed-width
// entry tentpole: across every spill layout, sort parallelism 1/2/4/8 and
// executor batch sizes 1/64/1024, a spilling ORDER BY returns the same
// rows in the same order with the same per-query I/O attribution, and the
// work counters are a function of the layout alone. The flat layouts are
// I/O-identical twins of each other (same entry pages), differing only in
// merge comparisons — the radix cascade's saving — and the tuple layout
// is the legacy format with no entry files at all.
func TestEntryLayoutGoldenMatrix(t *testing.T) {
	db := layoutDB(t)
	plan, err := db.Optimize(db.Scan("t").OrderBy("b", "a"))
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		rows  [][]any
		sorts []SortStats
		io    IOStats
	}
	drain := func(lay EntryLayout, par, batch int) result {
		t.Helper()
		cur, err := db.Query(context.Background(), plan,
			WithSortEntryLayout(lay),
			WithSortParallelism(par),
			WithSortSpillParallelism(par),
			WithExecBatchSize(batch))
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		var r result
		for cur.Next() {
			r.rows = append(r.rows, cur.Row())
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		st := cur.Stats()
		r.sorts, r.io = st.Sorts, st.IO
		return r
	}

	// Reference: tuple layout, serial, row-at-a-time — the legacy engine.
	ref := drain(EntryLayoutTuple, 1, 1)
	if len(ref.sorts) != 1 || ref.sorts[0].RunsGenerated == 0 {
		t.Fatalf("workload must spill for this test to mean anything: %+v", ref.sorts)
	}
	if ref.sorts[0].FlatRunPages != 0 || ref.sorts[0].MergeBucketSkips != 0 {
		t.Fatalf("tuple layout must not touch the flat counters: %+v", ref.sorts[0])
	}

	base := map[EntryLayout]result{}
	for _, lay := range []EntryLayout{EntryLayoutFlat, EntryLayoutFlatHeap, EntryLayoutTuple} {
		for _, par := range []int{1, 2, 4, 8} {
			for _, batch := range []int{1, 64, 1024} {
				name := fmt.Sprintf("%v-par%d-batch%d", lay, par, batch)
				r := drain(lay, par, batch)
				if !reflect.DeepEqual(r.rows, ref.rows) {
					t.Fatalf("%s: output diverges from the legacy reference", name)
				}
				first, ok := base[lay]
				if !ok {
					base[lay] = r
					continue
				}
				// Within a layout every counter and the per-query I/O
				// attribution are parallelism- and batch-invariant.
				if !reflect.DeepEqual(r.sorts, first.sorts) {
					t.Fatalf("%s: sort counters vary within the layout:\n got %+v\nwant %+v",
						name, r.sorts, first.sorts)
				}
				if r.io != first.io {
					t.Fatalf("%s: IO attribution varies within the layout: got %+v want %+v",
						name, r.io, first.io)
				}
			}
		}
	}

	flat, heap, tuple := base[EntryLayoutFlat], base[EntryLayoutFlatHeap], base[EntryLayoutTuple]
	// The flat layouts write identical entry files and must be I/O twins.
	if flat.io != heap.io {
		t.Fatalf("flat and flat-heap IO diverge: %+v vs %+v", flat.io, heap.io)
	}
	if flat.sorts[0].FlatRunPages == 0 || flat.sorts[0].FlatRunPages != heap.sorts[0].FlatRunPages {
		t.Fatalf("flat run pages: flat %d, flat-heap %d — want equal and nonzero",
			flat.sorts[0].FlatRunPages, heap.sorts[0].FlatRunPages)
	}
	// The cascade is the only difference: fewer comparisons, counted parks.
	if flat.sorts[0].Comparisons >= heap.sorts[0].Comparisons {
		t.Fatalf("radix cascade saved nothing: flat %d vs flat-heap %d comparisons",
			flat.sorts[0].Comparisons, heap.sorts[0].Comparisons)
	}
	if flat.sorts[0].MergeBucketSkips == 0 || heap.sorts[0].MergeBucketSkips != 0 {
		t.Fatalf("bucket skips: flat %d (want >0), flat-heap %d (want 0)",
			flat.sorts[0].MergeBucketSkips, heap.sorts[0].MergeBucketSkips)
	}
	// Entry files are the flat layouts' I/O price over the legacy format.
	if flat.io.RunTotal() <= tuple.io.RunTotal() {
		t.Fatalf("flat run IO %d should exceed tuple run IO %d by the entry pages",
			flat.io.RunTotal(), tuple.io.RunTotal())
	}
}
