package pyro

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// groupedDB builds the tentpole's plan-flip workload: 50k rows clustered on
// g (100 partial-sort segments), with a coarse v so the (g, v) group count
// sits well below the row count. Unlimited, Sort(HashAggregate) wins on
// full-drain cost; under a small row budget the pipelined
// GroupAggregate(PartialSort) wins on prefix cost.
func groupedDB(t testing.TB) *Database {
	t.Helper()
	db := Open(Config{})
	rows := make([][]any, 50_000)
	for i := range rows {
		rows[i] = []any{int64(i / 500), int64((i * 7 % 10_000) / 100), int64(i)}
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "pad", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func groupedQuery(db *Database) *Query {
	return db.Scan("big").
		GroupBy([]string{"g", "v"}, Agg{Name: "total", Func: Sum, Arg: Col("pad")}).
		OrderBy("g", "v")
}

// TestTopKPlanFlipMatrix is the PR's acceptance test: with Limit(k) for
// small k the optimizer selects the pipelined partial-sort plan
// (GroupAggregate over a partial-sort enforcer) where the unlimited query
// selects the blocking hash plan (Sort over HashAggregate); and at k = N
// the prefix cost equals the total, so the choice reverts to the unlimited
// plan exactly.
func TestTopKPlanFlipMatrix(t *testing.T) {
	db := groupedDB(t)

	unlimited, err := db.Optimize(groupedQuery(db))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(unlimited.Explain(), "HashAggregate") ||
		strings.Contains(unlimited.Explain(), "partial") {
		t.Fatalf("unlimited query should pick the blocking hash plan:\n%s", unlimited.Explain())
	}
	// Prefix(N) ≡ Total at the public surface.
	if got := unlimited.EstimatedPrefixCost(1 << 40); got != unlimited.EstimatedCost() {
		t.Fatalf("EstimatedPrefixCost(∞) = %f, want EstimatedCost %f", got, unlimited.EstimatedCost())
	}

	for _, k := range []int64{1, 100} {
		plan, err := db.Optimize(groupedQuery(db).Limit(k))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan.Explain(), "partial") ||
			strings.Contains(plan.Explain(), "HashAggregate") {
			t.Fatalf("Limit(%d) should flip to the pipelined partial-sort plan:\n%s", k, plan.Explain())
		}
		if plan.EstimatedCost() >= unlimited.EstimatedCost() {
			t.Fatalf("Limit(%d) plan prices full drain: %f >= %f",
				k, plan.EstimatedCost(), unlimited.EstimatedCost())
		}
		// The pipelined plan's startup is a fraction of the blocking plan's.
		if 5*plan.EstimatedStartupCost() > unlimited.EstimatedStartupCost() {
			t.Fatalf("Limit(%d) startup %f not ≪ blocking startup %f",
				k, plan.EstimatedStartupCost(), unlimited.EstimatedStartupCost())
		}
	}

	// k = N: Prefix(N) ≡ Total, so the plan under the Limit is the
	// unlimited plan again, bit-identical shape and cost.
	atN, err := db.Optimize(groupedQuery(db).Limit(50_000))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(atN.Explain(), "HashAggregate") || strings.Contains(atN.Explain(), "partial") {
		t.Fatalf("Limit(N) should keep the unlimited plan:\n%s", atN.Explain())
	}
	if atN.EstimatedCost() != unlimited.EstimatedCost() {
		t.Fatalf("Limit(N) cost %f != unlimited cost %f — Prefix(N) must equal Total",
			atN.EstimatedCost(), unlimited.EstimatedCost())
	}

	// Correctness across the flip: the limited plans return the first k
	// rows of the unlimited ordering.
	want, err := db.Execute(unlimited)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{1, 100} {
		plan, err := db.Optimize(groupedQuery(db).Limit(k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(got.Data)) != k {
			t.Fatalf("Limit(%d) returned %d rows", k, len(got.Data))
		}
		for i := range got.Data {
			if !reflect.DeepEqual(got.Data[i], want.Data[i]) {
				t.Fatalf("Limit(%d) row %d = %v, want %v", k, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestWithRowTargetReplansWithoutTruncating: WithRowTarget(k) re-optimizes
// an unlimited query for first-k consumption — the executed plan becomes
// the pipelined partial-sort plan — but the stream is NOT truncated: a
// full drain still yields every row, identical to the blocking plan's
// output.
func TestWithRowTargetReplansWithoutTruncating(t *testing.T) {
	db := groupedDB(t)
	plan, err := db.Optimize(groupedQuery(db))
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	drain := func(opts ...ExecOption) ([][]any, ExecStats) {
		t.Helper()
		cur, err := db.Query(context.Background(), plan, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var rows [][]any
		for cur.Next() {
			rows = append(rows, cur.Row())
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		return rows, cur.Stats()
	}

	// Without a row target the blocking plan runs: its enforcer is an SRS
	// full sort (no partial-sort segments).
	base, baseStats := drain()
	if len(baseStats.Sorts) != 1 || baseStats.Sorts[0].Segments != 0 {
		t.Fatalf("expected one full-sort enforcer, got %+v", baseStats.Sorts)
	}

	// With a row target the pipelined plan runs — the enforcer is an MRS
	// partial sort — and the full drain still returns everything.
	targeted, targetStats := drain(WithRowTarget(10))
	if len(targetStats.Sorts) != 1 || targetStats.Sorts[0].Segments == 0 {
		t.Fatalf("WithRowTarget did not re-plan to a partial sort: %+v", targetStats.Sorts)
	}
	if targetStats.Rows != int64(len(want.Data)) {
		t.Fatalf("WithRowTarget truncated the stream: %d rows, want %d",
			targetStats.Rows, len(want.Data))
	}
	if !reflect.DeepEqual(base, targeted) {
		t.Fatal("row-targeted plan and blocking plan disagree on the result")
	}

	// The original Plan is untouched by per-query re-planning.
	if !strings.Contains(plan.Explain(), "HashAggregate") {
		t.Fatalf("WithRowTarget mutated the caller's plan:\n%s", plan.Explain())
	}

	if _, err := db.Query(context.Background(), plan, WithRowTarget(-1)); err == nil {
		t.Fatal("negative row target should error")
	}
}

// TestPushedDownLimitMatchesEarlyClose is the satellite's acceptance test:
// a planned Limit(k), drained to completion, must shed exactly the work
// the early-Close Top-K test sheds by hand — same sorted-segment count,
// same page reads — and report Stats().Rows == k. Serial sort parallelism
// pins the segment pipeline so the two runs are comparable number for
// number.
func TestPushedDownLimitMatchesEarlyClose(t *testing.T) {
	db := segmentedDB(t, 50_000, 500) // 100 segments
	const k = 10
	serial := []ExecOption{WithSortParallelism(1), WithSortSpillParallelism(1)}

	// Arm 1: unlimited plan, consumer pulls k rows and closes.
	unlimited, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.Query(context.Background(), unlimited, serial...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: %v", i, cur.Err())
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	earlyClose := cur.Stats()

	// Arm 2: planned Limit(k), drained to exhaustion — the Limit operator
	// closes the sort by itself.
	limited, err := db.Optimize(db.Scan("big").OrderBy("g", "v").Limit(k))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(limited.Explain(), "partial") {
		t.Fatalf("expected a partial-sort Top-K plan:\n%s", limited.Explain())
	}
	cur2, err := db.Query(context.Background(), limited, serial...)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for cur2.Next() {
		rows++
	}
	if err := cur2.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cur2.Close(); err != nil {
		t.Fatal(err)
	}
	planned := cur2.Stats()

	if rows != k || planned.Rows != k {
		t.Fatalf("planned limit rows = %d (stats %d), want %d", rows, planned.Rows, k)
	}
	if es, ps := earlyClose.Sorts[0].Segments, planned.Sorts[0].Segments; es != ps {
		t.Fatalf("segments sorted: early close %d, planned limit %d — must match", es, ps)
	}
	if er, pr := earlyClose.IO.PageReads, planned.IO.PageReads; er != pr {
		t.Fatalf("page reads: early close %d, planned limit %d — must match", er, pr)
	}
	if ei, pi := earlyClose.Sorts[0].TuplesIn, planned.Sorts[0].TuplesIn; ei != pi {
		t.Fatalf("tuples consumed: early close %d, planned limit %d — must match", ei, pi)
	}
	// And both abandoned almost all of the 100 segments.
	if planned.Sorts[0].Segments >= 100 {
		t.Fatalf("planned limit sorted every segment (%d)", planned.Sorts[0].Segments)
	}
	t.Logf("planned Limit(%d): %d/100 segments sorted, %d pages read, %d tuples pulled",
		k, planned.Sorts[0].Segments, planned.IO.PageReads, planned.Sorts[0].TuplesIn)
}

// TestLimitZeroSemantics pins the defined k = 0 behavior end to end: a
// valid, empty, zero-cost cursor whose plan contains no sort and whose
// execution does no I/O.
func TestLimitZeroSemantics(t *testing.T) {
	db := segmentedDB(t, 10_000, 100)
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v").Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "Sort") {
		t.Fatalf("LIMIT 0 planned a degenerate sort:\n%s", plan.Explain())
	}
	if plan.EstimatedCost() != 0 || plan.EstimatedStartupCost() != 0 {
		t.Fatalf("LIMIT 0 cost = %f/%f, want zero", plan.EstimatedCost(), plan.EstimatedStartupCost())
	}
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Next() {
		t.Fatal("LIMIT 0 produced a row")
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	st := cur.Stats()
	if st.Rows != 0 || st.IO.Total() != 0 {
		t.Fatalf("LIMIT 0 stats: %d rows, %d transfers — want zero work", st.Rows, st.IO.Total())
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestContendedPoolFlipsPlanChoice pins the governor-aware cost model: the
// optimizer prices sorts at the grant the sort-memory pool would issue
// right now, so the same query flips plans under contention. Alone, the
// pool's full 512 blocks hold the hash aggregate's group state and the
// blocking Sort(HashAggregate) wins on full-drain cost; with another
// cursor pinning the pool the expected grant halves, the modeled hash
// aggregate spills its group state, and the optimizer switches to the
// pipelined GroupAggregate(PartialSort) — whose per-segment memory it can
// actually afford. Releasing the contention restores the original choice
// (the two plans cache under different model keys, so neither pollutes
// the other).
func TestContendedPoolFlipsPlanChoice(t *testing.T) {
	db := Open(Config{PageSize: 512, SortMemoryBlocks: 512})
	rows := make([][]any, 50_000)
	for i := range rows {
		rows[i] = []any{int64(i / 500), int64((i * 7 % 10_000) / 100), int64(i)}
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "pad", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}

	alone, err := db.Optimize(groupedQuery(db))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(alone.Explain(), "HashAggregate") ||
		strings.Contains(alone.Explain(), "partial") {
		t.Fatalf("uncontended query should pick the blocking hash plan:\n%s", alone.Explain())
	}

	// Pin the pool: a concurrent sorting cursor holds a grant from Query
	// until Close, so the optimizer now sees two claimants and expects a
	// fair-share grant of 256 blocks.
	holdPlan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	hold, err := db.Query(context.Background(), holdPlan)
	if err != nil {
		t.Fatal(err)
	}

	contended, err := db.Optimize(groupedQuery(db))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(contended.Explain(), "partial") ||
		strings.Contains(contended.Explain(), "HashAggregate") {
		t.Fatalf("contended query should flip to the pipelined partial-sort plan:\n%s", contended.Explain())
	}

	if err := hold.Close(); err != nil {
		t.Fatal(err)
	}
	released, err := db.Optimize(groupedQuery(db))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(released.Explain(), "HashAggregate") {
		t.Fatalf("releasing contention should restore the hash plan:\n%s", released.Explain())
	}
}
