package pyro

import (
	"strings"
	"testing"

	"pyro/internal/storage"
)

// openTestDB loads a small two-table database exercising clustering,
// covering indices and all query-builder verbs.
func openTestDB(t *testing.T) *Database {
	t.Helper()
	db := Open(Config{SortMemoryBlocks: 64})
	t.Cleanup(func() { storage.AssertNoLeaks(t, db.disk) })
	var orders, items [][]any
	for i := 0; i < 200; i++ {
		orders = append(orders, []any{int64(i), int64(i % 10), "status-" + string(rune('A'+i%3))})
		for k := 0; k < 3; k++ {
			items = append(items, []any{int64(i), int64(k), int64((i*k)%50 + 1), float64(i%7) + 0.5})
		}
	}
	if err := db.CreateTable("orders", []Column{
		{Name: "o_id", Type: Int64},
		{Name: "o_cust", Type: Int64},
		{Name: "o_status", Type: String, Width: 10},
	}, ClusterOn("o_id"), orders); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("items", []Column{
		{Name: "i_order", Type: Int64},
		{Name: "i_line", Type: Int64},
		{Name: "i_qty", Type: Int64},
		{Name: "i_price", Type: Float64},
	}, ClusterOn("i_order", "i_line"), items); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("items_order", "items", []string{"i_order"}, []string{"i_qty"}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openTestDB(t)
	q := db.Scan("orders").
		Filter(Eq(Col("o_cust"), Int(3))).
		OrderBy("o_id")
	plan, err := db.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstimatedCost() <= 0 {
		t.Fatal("cost should be positive")
	}
	if !strings.Contains(plan.Explain(), "Filter") {
		t.Fatalf("Explain:\n%s", plan.Explain())
	}
	rows, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows.Data))
	}
	prev := int64(-1)
	for _, r := range rows.Data {
		id := r[0].(int64)
		if id < prev {
			t.Fatal("ORDER BY violated")
		}
		prev = id
		if r[1].(int64) != 3 {
			t.Fatal("filter violated")
		}
	}
	if got := rows.Columns; got[0] != "o_id" {
		t.Fatalf("columns = %v", got)
	}
}

func TestJoinGroupByFlow(t *testing.T) {
	db := openTestDB(t)
	q := db.Scan("orders").
		Join(db.Scan("items"), Eq(Col("o_id"), Col("i_order"))).
		GroupBy([]string{"o_id", "o_cust"},
			Agg{Name: "n", Func: Count},
			Agg{Name: "qty", Func: Sum, Arg: Col("i_qty")},
			Agg{Name: "value", Func: Sum, Arg: Mul(Col("i_qty"), Col("i_price"))}).
		OrderBy("o_id")
	plan, err := db.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 200 {
		t.Fatalf("groups = %d, want 200", len(rows.Data))
	}
	for _, r := range rows.Data {
		if r[2].(int64) != 3 {
			t.Fatalf("count per order = %v, want 3", r[2])
		}
	}
}

func TestSelfJoinWithAlias(t *testing.T) {
	db := openTestDB(t)
	t1 := db.Scan("orders").As("x_")
	t2 := db.Scan("orders").As("y_")
	q := t1.Join(t2, And(
		Eq(Col("x_o_cust"), Col("y_o_cust")),
		Eq(Col("x_o_status"), Col("y_o_status")),
	))
	plan, err := db.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) == 0 {
		t.Fatal("self join returned nothing")
	}
}

func TestHeuristicOptionsAffectPlans(t *testing.T) {
	db := openTestDB(t)
	q := db.Scan("orders").
		Join(db.Scan("items"), Eq(Col("o_id"), Col("i_order"))).
		OrderBy("o_id")
	base, err := db.Optimize(q, WithHeuristic(PYROO), WithoutHashJoin())
	if err != nil {
		t.Fatal(err)
	}
	arb, err := db.Optimize(q, WithHeuristic(PYRO), WithoutHashJoin())
	if err != nil {
		t.Fatal(err)
	}
	if base.EstimatedCost() > arb.EstimatedCost()+1e-9 {
		t.Fatalf("PYRO-O (%f) should not exceed PYRO (%f)",
			base.EstimatedCost(), arb.EstimatedCost())
	}
	if base.OptimizerStats().GoalsExplored == 0 {
		t.Fatal("stats should be populated")
	}
}

func TestDistinctUnionLimitlessFlow(t *testing.T) {
	db := openTestDB(t)
	d := db.Scan("orders").Select("o_cust").Distinct().OrderBy("o_cust")
	plan, err := db.Optimize(d)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 10 {
		t.Fatalf("distinct customers = %d, want 10", len(rows.Data))
	}
	u := db.Scan("orders").Select("o_cust").Union(db.Scan("orders").Select("o_cust")).OrderBy("o_cust")
	uPlan, err := db.Optimize(u)
	if err != nil {
		t.Fatal(err)
	}
	uRows, err := db.Execute(uPlan)
	if err != nil {
		t.Fatal(err)
	}
	if len(uRows.Data) != 10 {
		t.Fatalf("union customers = %d, want 10", len(uRows.Data))
	}
}

func TestBuilderErrorsStick(t *testing.T) {
	db := openTestDB(t)
	if err := db.Scan("nope").Filter(Eq(Col("x"), Int(1))).Err(); err == nil {
		t.Fatal("missing table should error")
	}
	if _, err := db.Optimize(db.Scan("nope")); err == nil {
		t.Fatal("Optimize must surface builder errors")
	}
	if err := db.Scan("orders").Select("zzz").Err(); err == nil {
		t.Fatal("bad projection should error")
	}
	if err := db.Scan("orders").OrderBy("zzz").Err(); err == nil {
		t.Fatal("bad order column should error")
	}
	if err := db.Scan("orders").GroupBy([]string{"zzz"}).Err(); err == nil {
		t.Fatal("bad group column should error")
	}
	if err := db.Scan("orders").Union(db.Scan("items")).Err(); err == nil {
		t.Fatal("union arity mismatch should error")
	}
	other := Open(Config{})
	other.CreateTable("t", []Column{{Name: "a", Type: Int64}}, nil, nil)
	if err := db.Scan("orders").Join(other.Scan("t"), Eq(Col("o_id"), Col("a"))).Err(); err == nil {
		t.Fatal("cross-database join should error")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := Open(Config{})
	err := db.CreateTable("t", []Column{{Name: "a", Type: Int64}}, nil,
		[][]any{{int64(1), int64(2)}})
	if err == nil {
		t.Fatal("arity mismatch should error")
	}
	err = db.CreateTable("t", []Column{{Name: "a", Type: Int64}}, nil,
		[][]any{{struct{}{}}})
	if err == nil {
		t.Fatal("unsupported value should error")
	}
	if err := db.CreateIndex("i", "missing", []string{"a"}, nil); err == nil {
		t.Fatal("index on missing table should error")
	}
}

func TestValueConversions(t *testing.T) {
	for _, v := range []any{nil, 1, int64(2), 3.5, "s", true} {
		if _, err := Value(v); err != nil {
			t.Fatalf("Value(%v): %v", v, err)
		}
	}
	if _, err := Value([]int{1}); err == nil {
		t.Fatal("slice should be unsupported")
	}
}

func TestCrossDatabaseExecuteRejected(t *testing.T) {
	db1 := openTestDB(t)
	db2 := openTestDB(t)
	plan, err := db1.Optimize(db1.Scan("orders").OrderBy("o_id"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Execute(plan); err == nil {
		t.Fatal("executing another database's plan should error")
	}
}

func TestIOStatsVisible(t *testing.T) {
	db := openTestDB(t)
	db.ResetIOStats()
	plan, err := db.Optimize(db.Scan("items").OrderBy("i_qty"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if db.IOStats().PageReads == 0 {
		t.Fatal("execution should charge reads")
	}
}

func TestExprBuilders(t *testing.T) {
	db := openTestDB(t)
	q := db.Scan("orders").Filter(And(
		Or(Eq(Col("o_cust"), Int(1)), Ne(Col("o_cust"), Int(1))),
		Le(Col("o_id"), Int(1000)),
		Ge(Col("o_id"), Int(0)),
		Lt(Col("o_id"), Int(1001)),
		Gt(Col("o_id"), Int(-1)),
		Not(Eq(Col("o_status"), Str("nope"))),
	)).Project(
		Proj{Name: "a", Expr: Add(Col("o_id"), Int(1))},
		Proj{Name: "s", Expr: Sub(Col("o_id"), Int(1))},
		Proj{Name: "m", Expr: Mul(Col("o_id"), Int(2))},
		Proj{Name: "d", Expr: Div(Col("o_id"), Int(2))},
		Proj{Name: "f", Expr: Float(1.5)},
	)
	plan, err := db.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 200 {
		t.Fatalf("rows = %d", len(rows.Data))
	}
	if q.LogicalString() == "" {
		t.Fatal("LogicalString empty")
	}
}

// TestSpillParallelismEndToEnd drives the public API through a spilling
// ORDER BY at serial and parallel spill settings: identical rows in
// identical order, identical I/O totals — the whole-stack version of the
// xsort golden tests.
func TestSpillParallelismEndToEnd(t *testing.T) {
	run := func(spillPar int) (*Rows, IOStats) {
		db := Open(Config{
			SortMemoryBlocks:     2, // force the sort to spill
			SortParallelism:      4,
			SortSpillParallelism: spillPar,
		})
		var rows [][]any
		for i := 0; i < 4000; i++ {
			rows = append(rows, []any{int64(i / 2000), int64((i * 7919) % 4000), "pad-pad-pad"})
		}
		if err := db.CreateTable("t", []Column{
			{Name: "a", Type: Int64},
			{Name: "b", Type: Int64},
			{Name: "c", Type: String, Width: 12},
		}, ClusterOn("a"), rows); err != nil {
			t.Fatal(err)
		}
		q := db.Scan("t").OrderBy("a", "b")
		plan, err := db.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		db.ResetIOStats()
		out, err := db.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		return out, db.IOStats()
	}
	serialRows, serialIO := run(1)
	parRows, parIO := run(4)
	if len(serialRows.Data) != 4000 || len(parRows.Data) != len(serialRows.Data) {
		t.Fatalf("row counts: serial %d, parallel %d", len(serialRows.Data), len(parRows.Data))
	}
	for i := range serialRows.Data {
		for j := range serialRows.Data[i] {
			if serialRows.Data[i][j] != parRows.Data[i][j] {
				t.Fatalf("row %d col %d diverges: %v vs %v", i, j,
					serialRows.Data[i][j], parRows.Data[i][j])
			}
		}
	}
	if serialIO.RunTotal() == 0 {
		t.Fatal("workload must spill for this test to mean anything")
	}
	if serialIO != parIO {
		t.Fatalf("IOStats diverge: serial %+v, parallel %+v", serialIO, parIO)
	}
}

func TestSpillAwarePlanPricing(t *testing.T) {
	// The optimizer must price the spill parallelism execution will
	// actually use: explicit SortSpillParallelism, or the explicit
	// SortParallelism it inherits from — but never the GOMAXPROCS default
	// (plan choice must not depend on the optimizing machine).
	cost := func(cfg Config) float64 {
		// Small enough that the ORDER BY sort prices as external, large
		// enough that log_{M-1} stays meaningful.
		cfg.SortMemoryBlocks = 8
		cfg.PageSize = 512
		db := Open(cfg)
		var rows [][]any
		for i := 0; i < 4000; i++ {
			rows = append(rows, []any{int64(i), int64((i * 7919) % 4000)})
		}
		if err := db.CreateTable("t", []Column{
			{Name: "a", Type: Int64},
			{Name: "b", Type: Int64},
		}, ClusterOn("a"), rows); err != nil {
			t.Fatal(err)
		}
		plan, err := db.Optimize(db.Scan("t").OrderBy("b", "a"))
		if err != nil {
			t.Fatal(err)
		}
		return plan.EstimatedCost()
	}
	serial := cost(Config{})
	explicit := cost(Config{SortSpillParallelism: 4})
	inherited := cost(Config{SortParallelism: 4})
	if !(explicit < serial) {
		t.Fatalf("explicit spill parallelism must cheapen a spilling sort: serial %f, explicit %f", serial, explicit)
	}
	if inherited != explicit {
		t.Fatalf("SortParallelism=4 inherits into spilling at execution time and must price the same: inherited %f, explicit %f", inherited, explicit)
	}
	if defaulted := cost(Config{SortSpillParallelism: 1}); defaulted != serial {
		t.Fatalf("SpillParallelism=1 must price serially: %f vs %f", defaulted, serial)
	}
}
