package pyro

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pyro/internal/core"
	"pyro/internal/exec"
	"pyro/internal/govern"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/xsort"
)

// SortStats re-exports the sort engine's per-enforcer work counters
// (comparisons, runs, merge passes, segments, radix passes, spill regime).
type SortStats = xsort.SortStats

// execConfig is the per-query execution state ExecOptions mutate: the
// Database Config knobs plus execution-only settings that are not part of
// the database configuration.
type execConfig struct {
	Config
	rowTarget int64
	deadline  time.Time
	// memoryOverride records that WithSortMemoryBlocks pinned the budget
	// explicitly, which bypasses the sort-memory governor.
	memoryOverride bool
}

// ExecOption overrides one execution knob for a single Query call, leaving
// the Database's Config untouched. Options apply to every operator the
// query builds; except for WithRowTarget — which re-optimizes the plan for
// first-k consumption — the optimizer's plan choice is not revisited
// (re-plan with Optimize if a different knob should also change the plan).
type ExecOption func(*execConfig)

// WithSortParallelism bounds concurrent MRS segment sorts per enforcer for
// this query (0 = GOMAXPROCS, 1 = the paper's serial algorithm).
func WithSortParallelism(n int) ExecOption {
	return func(c *execConfig) { c.SortParallelism = n }
}

// WithSortSpillParallelism bounds concurrent spill jobs per enforcer for
// this query (0 = inherit the sort parallelism, 1 = serial spilling).
func WithSortSpillParallelism(n int) ExecOption {
	return func(c *execConfig) { c.SortSpillParallelism = n }
}

// WithSortRunFormation selects the run-formation algorithm for this query
// (adaptive radix by default; compare pins the comparison sorts).
func WithSortRunFormation(rf RunFormation) ExecOption {
	return func(c *execConfig) { c.SortRunFormation = rf }
}

// WithSortEntryLayout selects the sort enforcers' spill-run representation
// for this query (flat fixed-width entries with the radix-aware cascade
// merge by default; tuple pins the legacy payload-only spill format).
// Result rows and order are identical in every layout.
func WithSortEntryLayout(lay EntryLayout) ExecOption {
	return func(c *execConfig) { c.SortEntryLayout = lay }
}

// WithSortMemoryBlocks overrides the per-sort memory budget M (in disk
// blocks) for this query. The explicit value is taken literally: the query
// bypasses the database's sort-memory governor entirely — it takes no
// grant from the global pool and its budget is never shrunk under
// contention. Use it for experiments that need an exact, reproducible M
// per query; leave it unset to share the pool.
func WithSortMemoryBlocks(n int) ExecOption {
	return func(c *execConfig) {
		c.SortMemoryBlocks = n
		c.memoryOverride = true
	}
}

// WithExecBatchSize overrides the vectorized executor's chunk capacity for
// this query (see Config.ExecBatchSize): 0 picks the default
// (types.DefaultChunkCapacity), 1 runs the exact legacy row-at-a-time
// path, and n > 1 moves up to n rows per chunk through chunk-capable
// operator subtrees. Results, sort counters and per-query I/O are
// identical at every setting; only the per-row constant factor changes.
func WithExecBatchSize(n int) ExecOption {
	return func(c *execConfig) { c.ExecBatchSize = n }
}

// WithDeadline imposes an absolute deadline on this query. Reaching it
// aborts the query wherever it is — queued at the admission gate, blocked
// on a sort-memory grant, or deep in a sort or spill loop — and surfaces as
// context.DeadlineExceeded from Cursor.Err. The effective deadline is the
// earlier of this and Config.QueryTimeout; a zero time means none. Unlike
// context.WithDeadline this needs no goroutine or timer, and it keeps
// working for callers who pass context.Background().
func WithDeadline(t time.Time) ExecOption {
	return func(c *execConfig) { c.deadline = t }
}

// WithRowTarget declares that this consumer wants the first k rows fast —
// the streaming analogue of a LIMIT the query doesn't have. Query
// re-optimizes the plan with the optimizer's row budget set to k, so plan
// comparison happens by the cost of the first k rows (favoring pipelined
// partial-sort plans over blocking full sorts and hash operators, §7
// Top-K) instead of full drain. Unlike Query.Limit the result is NOT
// truncated: all rows stream if the cursor is drained — only the plan
// choice changes. Negative k is rejected by Query; 0 means "no target"
// (the option is a no-op, like omitting it).
func WithRowTarget(k int64) ExecOption {
	return func(c *execConfig) { c.rowTarget = k }
}

// ExecStats is one query's execution report, available from Cursor.Stats
// at any point in the cursor's life (live while streaming, frozen once the
// cursor finishes).
type ExecStats struct {
	// Rows is how many rows the cursor has returned.
	Rows int64
	// TimeToFirstRow is the latency from the Query call to the first Next
	// returning a row (zero until then). Under a pipelined partial-sort
	// plan this stays near zero however large the input; a full sort must
	// consume everything first — the paper's §3.1 pipelining benefit, made
	// visible at the public API.
	TimeToFirstRow time.Duration
	// Elapsed is the time from the Query call until the cursor finished,
	// or until now while it is still open.
	Elapsed time.Duration
	// Sorts snapshots every sort enforcer's counters in plan (pre-order)
	// position, matching Plan.Explain's operator order. An early Close
	// freezes them mid-flight: segments never sorted and spill runs never
	// read simply don't appear in the totals.
	Sorts []SortStats
	// IO is the disk activity this query itself caused, measured by a
	// per-query storage tap that every operator of the plan charges
	// alongside the device ledger. Attribution is exact and disjoint even
	// with other cursors running concurrently on the same Database: another
	// query's scans and spills never appear here, and the sum of all
	// cursors' IO equals the device's delta.
	IO IOStats
	// QueuedTime is how long the query waited in the admission gate before
	// executing (zero when admitted immediately or when
	// Config.MaxConcurrentQueries is unlimited).
	QueuedTime time.Duration
	// GrantedBlocks is the sort-memory grant this query received from the
	// global governor, in blocks, as initially issued (spill-pressure
	// reclaim may have shrunk it since). Zero when the query took no grant:
	// the governor is disabled, the budget was pinned with
	// WithSortMemoryBlocks, or the plan has no memory-consuming operator.
	GrantedBlocks int
	// GrantWait is how long the query blocked waiting for sort memory;
	// GrantWaits is 1 when it blocked at all (per-query grants block at
	// most once, at acquisition).
	GrantWait  time.Duration
	GrantWaits int64
}

// Cursor streams one query's results row by row, in the database/sql
// style:
//
//	cur, err := db.Query(ctx, plan)
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//	    var g, v int64
//	    if err := cur.Scan(&g, &v); err != nil { ... }
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Rows are produced on demand: under a pipelined plan (a partial-sort
// enforcer over a clustered or indexed prefix) the engine reads only as
// much input as the rows consumed require, and Close mid-stream abandons
// the rest — unsorted MRS segments are never sorted, unread spill runs are
// dropped with their arenas. Context cancellation is honored between Next
// calls and polled inside long-running sort and spill loops.
//
// A Cursor is not safe for concurrent use; separate cursors on one
// Database are (they share only the concurrency-safe storage layer).
type Cursor struct {
	db    *Database
	ctx   context.Context
	abort func() error // ctx.Err, extended with the query deadline
	op    exec.Operator
	cols  []string
	sorts []*exec.Sort
	tap   *storage.Tap

	// Serving-layer state: the admission slot and sort-memory grant this
	// query holds, both released exactly once when the cursor finishes.
	admitted bool
	queued   time.Duration
	grant    *govern.Grant

	start    time.Time
	firstRow time.Duration
	rows     int64

	// Batch-path state: when the plan's top subtree is chunk-capable and
	// batching is on, Next drains pooled chunks internally and serves rows
	// out of them — the public row semantics (TTFR at the first row, early
	// Close shedding, ctx polling per Next) are unchanged.
	chunkOp    exec.ChunkOperator
	chunkBatch int
	chunk      *types.Chunk
	chunkPos   int
	rowBuf     types.Tuple

	cur      types.Tuple
	err      error
	closeErr error
	finished bool
	final    ExecStats
}

// Query compiles a plan and returns a streaming cursor over its results.
// Execution resources come from the Database's Config, overridden per
// query by any ExecOptions. The context is checked before each Next and
// polled inside the sort enforcers' long loops; once it is done the cursor
// fails with its error. Note that a blocking full-sort plan does its
// sorting inside Query — a pipelined partial-sort plan is what makes the
// first row arrive early.
func (db *Database) Query(ctx context.Context, p *Plan, opts ...ExecOption) (*Cursor, error) {
	if p == nil {
		return nil, fmt.Errorf("pyro: nil plan")
	}
	if p.db != db {
		return nil, fmt.Errorf("pyro: plan belongs to a different database")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := execConfig{Config: db.cfg}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.rowTarget < 0 {
		return nil, fmt.Errorf("pyro: negative row target %d", cfg.rowTarget)
	}
	if cfg.ExecBatchSize < 0 {
		return nil, fmt.Errorf("pyro: negative exec batch size %d", cfg.ExecBatchSize)
	}
	if cfg.rowTarget != 0 && p.node == nil {
		return nil, fmt.Errorf("pyro: plan carries no query to re-optimize for a row target")
	}

	// The abort check every blocking point of this query polls: context
	// cancellation, extended with the effective deadline when one is set.
	abort := ctx.Err
	if dl, has := queryDeadline(cfg, time.Now()); has {
		abort = deadlineAbort(ctx, dl)
		if err := abort(); err != nil {
			return nil, err
		}
	}

	// Admission: with a bounded gate the query queues (cancellably) for an
	// execution slot before any optimizer or build work happens.
	var queued time.Duration
	admitted := false
	if db.gate != nil {
		var err error
		queued, err = db.gate.Enter(abort)
		if err != nil {
			return nil, err
		}
		admitted = true
	}
	// Until the cursor exists and owns them, every error return must give
	// back the admission slot and the memory grant.
	var grant *govern.Grant
	ok := false
	defer func() {
		if ok {
			return
		}
		if grant != nil {
			grant.Release()
		}
		if admitted {
			db.gate.Leave()
		}
	}()

	inner := p.inner
	if cfg.rowTarget != 0 {
		ropts := p.opts
		ropts.RowTarget = cfg.rowTarget
		rplan, _, err := db.optimize(p.node, ropts)
		if err != nil {
			return nil, err
		}
		inner = rplan
	}
	tap := storage.NewTap()

	// Sort-memory grant: governed queries whose plan buffers sort memory
	// ask the global pool for their configured budget. A lone query gets
	// its full ask (single-cursor execution is identical to the ungoverned
	// engine); under contention the grant is a fair share and may be shrunk
	// further while the query spills. The grant doubles as the live
	// xsort.Budget every sort enforcer re-reads, and the tap lets the
	// governor see this query's spill writes. Explicit WithSortMemoryBlocks
	// bypasses all of this, as does a plan with no sort or spool operator.
	buildBlocks := cfg.SortMemoryBlocks
	var budget xsort.Budget
	if db.gov != nil && !cfg.memoryOverride && planUsesSortMemory(inner) {
		g, err := db.gov.Acquire(cfg.SortMemoryBlocks, tap, abort)
		if err != nil {
			return nil, err
		}
		grant = g
		buildBlocks = g.Initial()
		budget = g
	}

	batch := cfg.ExecBatchSize
	if batch <= 0 {
		batch = types.DefaultChunkCapacity
	}
	op, err := core.Build(inner, core.BuildConfig{
		Disk:                 db.disk,
		SortMemoryBlocks:     buildBlocks,
		SortBudget:           budget,
		SortParallelism:      cfg.SortParallelism,
		SortSpillParallelism: cfg.SortSpillParallelism,
		SortRunFormation:     cfg.SortRunFormation,
		SortEntryLayout:      cfg.SortEntryLayout,
		SortAbort:            abort,
		IOTap:                tap,
		ExecBatchSize:        batch,
	})
	if err != nil {
		return nil, err
	}
	c := &Cursor{
		db:       db,
		ctx:      ctx,
		abort:    abort,
		op:       op,
		cols:     inner.Schema.Names(),
		sorts:    exec.CollectSorts(op),
		tap:      tap,
		admitted: admitted,
		queued:   queued,
		grant:    grant,
		start:    time.Now(),
	}
	if batch > 1 && exec.ChunkCapable(op) {
		c.chunkOp = op.(exec.ChunkOperator)
		c.chunkBatch = batch
	}
	ok = true // c.finish releases the slot and grant from here on
	if err := openOp(op); err != nil {
		if cerr := c.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return c, nil
}

// queryDeadline resolves the query's effective absolute deadline: the
// earlier of WithDeadline and now + Config.QueryTimeout.
func queryDeadline(cfg execConfig, now time.Time) (time.Time, bool) {
	dl := cfg.deadline
	if cfg.QueryTimeout > 0 {
		if t := now.Add(cfg.QueryTimeout); dl.IsZero() || t.Before(dl) {
			dl = t
		}
	}
	return dl, !dl.IsZero()
}

// deadlineAbort builds a query abort check that reports context
// cancellation first and then the absolute deadline. The one function feeds
// every blocking point — admission, the memory governor, sort and spill
// loops, Next — so a query blocked anywhere observes its deadline exactly
// the way a cancelled one observes cancellation.
func deadlineAbort(ctx context.Context, dl time.Time) func() error {
	return func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(dl) {
			return fmt.Errorf("pyro: query deadline %s exceeded: %w", dl.Format(time.RFC3339Nano), context.DeadlineExceeded)
		}
		return nil
	}
}

// recoverQuery converts a panic escaping the operator tree into an error at
// *dst. Without it a panicking operator would unwind through Query or Next
// past the cursor's accounting, wedging the admission slot and sort-memory
// grant the query holds; with it the panic becomes a Cursor.Err and finish
// releases everything as on any other failure.
func recoverQuery(dst *error) {
	if r := recover(); r != nil {
		// A panic value that is itself an error keeps its chain, so callers
		// can still errors.Is against sentinels (e.g. an injected storage
		// fault in panic mode) on the contained path.
		var err error
		if perr, ok := r.(error); ok {
			err = fmt.Errorf("pyro: panic during query execution: %w", perr)
		} else {
			err = fmt.Errorf("pyro: panic during query execution: %v", r)
		}
		if *dst == nil {
			*dst = err
		} else {
			*dst = errors.Join(*dst, err)
		}
	}
}

// openOp opens the operator tree with panic containment.
func openOp(op exec.Operator) (err error) {
	defer recoverQuery(&err)
	return op.Open()
}

// planUsesSortMemory reports whether the plan contains an operator that
// buffers tuples against the sort-memory budget — a sort enforcer or a
// block-nested-loops join spool. Plans without one (pure scans, filters,
// hash operators) run grant-free: they take nothing from the global pool.
func planUsesSortMemory(p *core.Plan) bool {
	return p.CountKind(core.OpSort) > 0 || p.CountKind(core.OpNLJoin) > 0
}

// Next advances to the next row, reporting whether one is available. It
// returns false at the end of the result, on error, after Close, and once
// the query context is done; Err distinguishes the cases. Exhausting the
// result closes the cursor automatically (calling Close again is still
// fine).
func (c *Cursor) Next() bool {
	if c.finished {
		return false
	}
	if err := c.abort(); err != nil {
		c.fail(err)
		return false
	}
	if c.chunkOp != nil {
		return c.nextChunked()
	}
	t, ok, err := c.safeNext()
	if err != nil {
		c.fail(err)
		return false
	}
	if !ok {
		c.finish()
		return false
	}
	if c.rows == 0 {
		c.firstRow = time.Since(c.start)
	}
	c.rows++
	c.cur = t
	return true
}

// nextChunked serves the next row out of the cursor's chunk, refilling it
// from the operator tree at batch boundaries. The current row lives in a
// reused buffer (Row and Scan copy values out), so steady-state draining
// allocates nothing per row. TimeToFirstRow is stamped when the first row
// is surfaced to the caller — after the chunk refill, so batching cannot
// claim a first row it has not yet served.
func (c *Cursor) nextChunked() bool {
	for c.chunk == nil || c.chunkPos >= c.chunk.Rows() {
		if c.chunk == nil {
			c.chunk = types.GetChunk(len(c.cols), c.chunkBatch)
		}
		if err := c.safeNextChunk(); err != nil {
			c.fail(err)
			return false
		}
		c.chunkPos = 0
		if c.chunk.Rows() == 0 {
			c.finish()
			return false
		}
	}
	c.rowBuf = c.chunk.CopyRow(c.rowBuf, c.chunkPos)
	c.chunkPos++
	if c.rows == 0 {
		c.firstRow = time.Since(c.start)
	}
	c.rows++
	c.cur = c.rowBuf
	return true
}

// safeNext pulls one row with panic containment.
func (c *Cursor) safeNext() (t types.Tuple, ok bool, err error) {
	defer recoverQuery(&err)
	return c.op.Next()
}

// safeNextChunk refills the cursor's chunk with panic containment.
func (c *Cursor) safeNextChunk() (err error) {
	defer recoverQuery(&err)
	return c.chunkOp.NextChunk(c.chunk)
}

// Row returns the current row (the one the last successful Next moved to)
// as Go values, or nil when there is none. The slice is freshly allocated;
// the caller owns it.
func (c *Cursor) Row() []any {
	if c.cur == nil {
		return nil
	}
	row := make([]any, len(c.cur))
	for i, d := range c.cur {
		row[i] = datumValue(d)
	}
	return row
}

// Scan copies the current row into dest, one pointer per output column:
// *int64, *float64, *string, *bool for the matching column type (never
// NULL), or *any for any column (NULL scans as nil).
func (c *Cursor) Scan(dest ...any) error {
	if c.cur == nil {
		return fmt.Errorf("pyro: Scan called without a row (call Next first)")
	}
	if len(dest) != len(c.cur) {
		return fmt.Errorf("pyro: Scan got %d destinations for %d columns", len(dest), len(c.cur))
	}
	for i, d := range dest {
		if err := scanDatum(d, c.cur[i]); err != nil {
			return fmt.Errorf("pyro: Scan column %q: %w", c.cols[i], err)
		}
	}
	return nil
}

func scanDatum(dest any, d types.Datum) error {
	switch p := dest.(type) {
	case *any:
		*p = datumValue(d)
		return nil
	case *int64:
		if d.Kind() == types.KindInt {
			*p = d.Int()
			return nil
		}
	case *float64:
		switch d.Kind() {
		case types.KindFloat:
			*p = d.Float()
			return nil
		case types.KindInt:
			*p = float64(d.Int())
			return nil
		}
	case *string:
		if d.Kind() == types.KindString {
			*p = d.Str()
			return nil
		}
	case *bool:
		if d.Kind() == types.KindBool {
			*p = d.Bool()
			return nil
		}
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return fmt.Errorf("cannot scan %v into %T", datumValue(d), dest)
}

// Columns returns the result's column names.
func (c *Cursor) Columns() []string {
	return append([]string(nil), c.cols...)
}

// Err returns the first error the cursor hit — a failed Next, the query
// context's error, or a failed Close (joined onto an earlier error when
// both occurred, so neither is lost). It is nil after a clean exhaustion
// or a clean early Close.
func (c *Cursor) Err() error { return c.err }

// Close releases the query's resources and returns the release error, if
// any. Closing mid-stream propagates down the operator tree: sort
// enforcers abandon unsorted MRS segments, drop unread spill runs and
// release their arenas; the remaining input is never read. Close is
// idempotent, and Stats stays available afterwards.
func (c *Cursor) Close() error {
	c.finish()
	return c.closeErr
}

// fail records the cursor's first error and finishes it.
func (c *Cursor) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	c.finish()
}

// finish closes the operator tree exactly once, returns the query's
// serving resources (sort-memory grant, admission slot) and freezes the
// stats.
func (c *Cursor) finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.cur = nil
	if c.chunk != nil {
		types.PutChunk(c.chunk)
		c.chunk = nil
	}
	if c.closeErr = closeOp(c.op); c.closeErr != nil {
		if c.err == nil {
			c.err = c.closeErr
		} else {
			c.err = errors.Join(c.err, c.closeErr)
		}
	}
	c.final = c.snapshot()
	if c.grant != nil {
		c.grant.Release()
	}
	if c.admitted {
		c.db.gate.Leave()
	}
}

// closeOp closes the operator tree with panic containment — a panicking
// Close must still hand finish control to release the grant and gate slot.
func closeOp(op exec.Operator) (err error) {
	defer recoverQuery(&err)
	return op.Close()
}

// Stats reports the query's execution counters: a live snapshot while the
// cursor is open, the final numbers once it has finished.
func (c *Cursor) Stats() ExecStats {
	if c.finished {
		return c.final
	}
	return c.snapshot()
}

func (c *Cursor) snapshot() ExecStats {
	s := ExecStats{
		Rows:           c.rows,
		TimeToFirstRow: c.firstRow,
		Elapsed:        time.Since(c.start),
		IO:             c.tap.Stats(),
		QueuedTime:     c.queued,
	}
	if c.grant != nil {
		s.GrantedBlocks = c.grant.Initial()
		s.GrantWait = c.grant.Waited()
		s.GrantWaits = c.grant.Waits()
	}
	if len(c.sorts) > 0 {
		s.Sorts = make([]SortStats, len(c.sorts))
		for i, sort := range c.sorts {
			s.Sorts[i] = *sort.SortStats()
		}
	}
	return s
}
