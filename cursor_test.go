package pyro

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pyro/internal/storage"
)

// segmentedDB builds a table of n rows clustered on g with rows/segSize
// partial-sort segments, the shape whose OrderBy(g, v) plan is a pipelined
// MRS over the clustering prefix. Shared with BenchmarkTimeToFirstRow so
// test and benchmark measure the identical workload.
func segmentedDB(t testing.TB, n, segSize int) *Database {
	t.Helper()
	db := Open(Config{SortMemoryBlocks: 64})
	t.Cleanup(func() { storage.AssertNoLeaks(t, db.disk) })
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		rows[i] = []any{int64(i / segSize), int64(i * 7 % 10_000), int64(i)}
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "pad", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCursorStreamsAndScans(t *testing.T) {
	db := openTestDB(t)
	plan, err := db.Optimize(db.Scan("items").OrderBy("i_qty", "i_order"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cols := cur.Columns(); !reflect.DeepEqual(cols, want.Columns) {
		t.Fatalf("Columns = %v, want %v", cols, want.Columns)
	}
	var got [][]any
	for cur.Next() {
		var order, line, qty int64
		var price float64
		if err := cur.Scan(&order, &line, &qty, &price); err != nil {
			t.Fatal(err)
		}
		row := cur.Row()
		if row[0] != order || row[1] != line || row[2] != qty || row[3] != price {
			t.Fatalf("Scan and Row disagree: %v vs (%d,%d,%d,%g)", row, order, line, qty, price)
		}
		got = append(got, row)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Data) {
		t.Fatalf("cursor produced %d rows, Execute %d; streams disagree", len(got), len(want.Data))
	}

	st := cur.Stats()
	if st.Rows != int64(len(want.Data)) {
		t.Fatalf("Stats.Rows = %d, want %d", st.Rows, len(want.Data))
	}
	if st.TimeToFirstRow <= 0 || st.Elapsed < st.TimeToFirstRow {
		t.Fatalf("implausible timings: first row %v, elapsed %v", st.TimeToFirstRow, st.Elapsed)
	}
	if len(st.Sorts) == 0 {
		t.Fatal("ORDER BY plan reported no sort enforcers")
	}
	// Exhaustion auto-closed the cursor; both are still safe.
	if cur.Next() {
		t.Fatal("Next after exhaustion returned true")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorScanValidation(t *testing.T) {
	db := openTestDB(t)
	plan, err := db.Optimize(db.Scan("orders").OrderBy("o_id"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	if err := cur.Scan(new(int64)); err == nil {
		t.Fatal("Scan before Next should error")
	}
	if !cur.Next() {
		t.Fatal(cur.Err())
	}
	if err := cur.Scan(new(int64)); err == nil {
		t.Fatal("arity mismatch should error")
	}
	var id int64
	var status string
	if err := cur.Scan(&id, new(string), &status); err == nil {
		t.Fatal("type mismatch (string for int column) should error")
	}
	var cust, anyStatus any
	if err := cur.Scan(&id, &cust, &anyStatus); err != nil {
		t.Fatal(err)
	}
	if id != 0 || cust != int64(0) || anyStatus != "status-A" {
		t.Fatalf("scanned (%d, %v, %v), want first orders row", id, cust, anyStatus)
	}
}

// TestCursorEarlyCloseAbandonsWork is the tentpole's acceptance test: a
// Top-K consumer that closes the cursor after k rows must sort strictly
// fewer MRS segments and read strictly fewer pages than a full drain of
// the same plan, because closing propagates down the operator tree and
// abandons uncollected segments and unread input.
func TestCursorEarlyCloseAbandonsWork(t *testing.T) {
	db := segmentedDB(t, 50_000, 500) // 100 segments
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "partial") {
		t.Fatalf("expected a partial-sort plan, got:\n%s", plan.Explain())
	}

	// Reference: drain everything through the cursor.
	full, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for full.Next() {
	}
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
	fullStats := full.Stats()
	if len(fullStats.Sorts) != 1 {
		t.Fatalf("expected one sort enforcer, got %d", len(fullStats.Sorts))
	}

	// Top-K: take k rows, close, keep the frozen stats.
	const k = 10
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: %v", i, cur.Err())
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	early := cur.Stats()

	if early.Rows != k {
		t.Fatalf("early cursor rows = %d, want %d", early.Rows, k)
	}
	if es, fs := early.Sorts[0].Segments, fullStats.Sorts[0].Segments; es >= fs {
		t.Fatalf("early close sorted %d segments, full drain %d — want strictly fewer", es, fs)
	}
	if er, fr := early.IO.PageReads, fullStats.IO.PageReads; er >= fr {
		t.Fatalf("early close read %d pages, full drain %d — want strictly fewer", er, fr)
	}
	if ei, fi := early.Sorts[0].TuplesIn, fullStats.Sorts[0].TuplesIn; ei >= fi {
		t.Fatalf("early close consumed %d input tuples, full drain %d — want strictly fewer", ei, fi)
	}
	t.Logf("early close after %d rows: %d/%d segments sorted, %d/%d pages read, %d/%d tuples consumed",
		k, early.Sorts[0].Segments, fullStats.Sorts[0].Segments,
		early.IO.PageReads, fullStats.IO.PageReads,
		early.Sorts[0].TuplesIn, fullStats.Sorts[0].TuplesIn)
}

// TestCursorEarlyCloseAbandonsSpillRuns: closing mid-merge of a spilled
// sort must drop the unread runs with their arenas — no files survive, and
// run-page reads stay strictly below the full drain's.
func TestCursorEarlyCloseAbandonsSpillRuns(t *testing.T) {
	db := segmentedDB(t, 40_000, 20_000) // 2 oversized segments at 8 blocks
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}

	full, err := db.Query(context.Background(), plan, WithSortMemoryBlocks(8))
	if err != nil {
		t.Fatal(err)
	}
	for full.Next() {
	}
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
	fullStats := full.Stats()
	if fullStats.Sorts[0].RunsGenerated == 0 {
		t.Fatal("workload must spill for this test to mean anything")
	}

	cur, err := db.Query(context.Background(), plan, WithSortMemoryBlocks(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: %v", i, cur.Err())
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	early := cur.Stats()
	if er, fr := early.IO.RunPageReads, fullStats.IO.RunPageReads; er >= fr {
		t.Fatalf("early close read %d run pages, full drain %d — unread spill runs were not abandoned", er, fr)
	}
}

func TestCursorContextCancellation(t *testing.T) {
	db := segmentedDB(t, 50_000, 500)
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}

	// Pre-canceled context: Query fails before doing any work.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Query(canceled, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query on canceled ctx returned %v, want context.Canceled", err)
	}

	// Cancellation mid-stream: the next Next observes it and the cursor
	// closes itself.
	ctx, cancel2 := context.WithCancel(context.Background())
	cur, err := db.Query(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: %v", i, cur.Err())
		}
	}
	cancel2()
	if cur.Next() {
		t.Fatal("Next after cancellation returned a row")
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}

	// Cancellation must also abort a blocking full sort from inside its
	// input-consumption loop: cancel while SRS's Open is running. The
	// abort is polled every few hundred tuples over a 50k-row input, so
	// Query reliably observes it.
	srsPlan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"), WithoutPartialSort())
	if err != nil {
		t.Fatal(err)
	}
	ctx3, cancel3 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cancel3(); close(done) }()
	cur3, err := db.Query(ctx3, srsPlan)
	<-done
	if err == nil {
		// The race went to Open: the sort finished before the cancel
		// landed. The cursor must still fail on its next Next.
		if cur3.Next() {
			cur3.Close()
			t.Fatal("Next after cancellation returned a row")
		}
		err = cur3.Err()
		cur3.Close()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SRS query returned %v, want context.Canceled", err)
	}
}

func TestCursorExecOptionsOverridePerQuery(t *testing.T) {
	db := segmentedDB(t, 50_000, 10_000) // few large segments: radix pays
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	drain := func(opts ...ExecOption) ExecStats {
		t.Helper()
		cur, err := db.Query(context.Background(), plan, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for cur.Next() {
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		return cur.Stats()
	}

	// Run formation: adaptive (the Config default) radix-sorts these large
	// segments; a per-query compare override must pin it off — and leave
	// the database default untouched for the next query.
	adaptive := drain()
	if adaptive.Sorts[0].RadixPasses == 0 {
		t.Fatal("default adaptive run formation did no radix work on large segments")
	}
	compared := drain(WithSortRunFormation(RunFormationCompare))
	if compared.Sorts[0].RadixPasses != 0 {
		t.Fatal("WithSortRunFormation(compare) did not pin the comparison sort")
	}
	again := drain()
	if again.Sorts[0].RadixPasses == 0 {
		t.Fatal("per-query override leaked into the database config")
	}

	// Spill regime: a tiny per-query memory budget forces spilling, and
	// the spill-parallelism override decides which regime forms the runs.
	serial := drain(WithSortMemoryBlocks(8), WithSortSpillParallelism(1))
	if serial.Sorts[0].SpillRunsSerial == 0 || serial.Sorts[0].SpillRunsParallel != 0 {
		t.Fatalf("spill-par 1 should form runs serially: %+v", serial.Sorts[0])
	}
	parallel := drain(WithSortMemoryBlocks(8), WithSortParallelism(2), WithSortSpillParallelism(2))
	if parallel.Sorts[0].SpillRunsParallel == 0 || parallel.Sorts[0].SpillRunsSerial != 0 {
		t.Fatalf("spill-par 2 should form runs on workers: %+v", parallel.Sorts[0])
	}
}

// TestConcurrentCursors runs several cursors over one Database (and one
// shared Plan) at once; `make race` gates the storage and spill layers
// underneath. Spilling is forced so concurrent arenas are exercised.
func TestConcurrentCursors(t *testing.T) {
	db := segmentedDB(t, 20_000, 10_000)
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	results := make([][][]any, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur, err := db.Query(context.Background(), plan, WithSortMemoryBlocks(8))
			if err != nil {
				errs[w] = err
				return
			}
			defer cur.Close()
			for cur.Next() {
				results[w] = append(results[w], cur.Row())
			}
			errs[w] = cur.Err()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("cursor %d: %v", w, errs[w])
		}
		if len(results[w]) != len(want.Data) {
			t.Fatalf("cursor %d produced %d rows, want %d", w, len(results[w]), len(want.Data))
		}
	}
	// Spot-check content equality on the key columns (ties on (g, v) may
	// legitimately order pad differently across runs).
	for w := 0; w < workers; w++ {
		for i, row := range results[w] {
			if row[0] != want.Data[i][0] || row[1] != want.Data[i][1] {
				t.Fatalf("cursor %d row %d = %v, want key %v", w, i, row, want.Data[i][:2])
			}
		}
	}
}

// TestPerQueryIOAttribution pins the per-query ledger taps: cursors
// running concurrently on one Database report exact, disjoint I/O — each
// equals the solo run of the same plan transfer for transfer, and the
// device-level delta is exactly their sum. (`make race` gates the tap
// plumbing underneath.) Spilling is forced so arena taps are exercised;
// serial sort knobs keep each cursor's I/O bit-deterministic.
func TestPerQueryIOAttribution(t *testing.T) {
	db := segmentedDB(t, 20_000, 10_000)
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	opts := []ExecOption{WithSortMemoryBlocks(8), WithSortParallelism(1), WithSortSpillParallelism(1)}

	drain := func() ExecStats {
		t.Helper()
		cur, err := db.Query(context.Background(), plan, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for cur.Next() {
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		return cur.Stats()
	}
	want := drain().IO
	if want.RunTotal() == 0 {
		t.Fatal("workload must spill for arena taps to be exercised")
	}

	before := db.IOStats()
	const workers = 4
	stats := make([]ExecStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur, err := db.Query(context.Background(), plan, opts...)
			if err != nil {
				errs[w] = err
				return
			}
			defer cur.Close()
			for cur.Next() {
			}
			errs[w] = cur.Err()
			stats[w] = cur.Stats()
		}(w)
	}
	wg.Wait()

	var sum IOStats
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("cursor %d: %v", w, errs[w])
		}
		if stats[w].IO != want {
			t.Fatalf("cursor %d IO = %+v, want the solo run's exact %+v — attribution overlapped",
				w, stats[w].IO, want)
		}
		sum.Add(stats[w].IO)
	}
	if delta := db.IOStats().Sub(before); delta != sum {
		t.Fatalf("device delta %+v != sum of per-query taps %+v", delta, sum)
	}
}

func TestQueryRejectsForeignPlan(t *testing.T) {
	db := openTestDB(t)
	other := openTestDB(t)
	plan, err := other.Optimize(other.Scan("orders"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(context.Background(), plan); err == nil {
		t.Fatal("Query accepted a plan from a different database")
	}
	if _, err := db.Query(context.Background(), nil); err == nil {
		t.Fatal("Query accepted a nil plan")
	}
}

// TestWithHeuristicOrderIndependence pins the WithHeuristic fix: ablation
// options must survive regardless of which side of WithHeuristic they
// appear on.
func TestWithHeuristicOrderIndependence(t *testing.T) {
	db := openTestDB(t)
	q := db.Scan("orders").Join(db.Scan("items"), Eq(Col("o_id"), Col("i_order"))).
		OrderBy("o_cust")

	after, err := db.Optimize(q, WithoutHashJoin(), WithHeuristic(PYROE))
	if err != nil {
		t.Fatal(err)
	}
	before, err := db.Optimize(q, WithHeuristic(PYROE), WithoutHashJoin())
	if err != nil {
		t.Fatal(err)
	}
	if after.Explain() != before.Explain() {
		t.Fatalf("option order changed the plan:\n--- ablation last:\n%s\n--- ablation first:\n%s",
			after.Explain(), before.Explain())
	}
	if strings.Contains(after.Explain(), "HashJoin") {
		t.Fatalf("WithoutHashJoin was dropped:\n%s", after.Explain())
	}

	// The heuristic's own implied defaults still apply: PYRO disables
	// partial sorts whether or not other options ran first.
	sorted := db.Scan("items").OrderBy("i_order", "i_qty")
	pyroPlan, err := db.Optimize(sorted, WithoutHashAgg(), WithHeuristic(PYRO))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pyroPlan.Explain(), "partial") {
		t.Fatalf("PYRO heuristic should disable partial sorts:\n%s", pyroPlan.Explain())
	}

	// Last heuristic wins outright: an earlier PYRO must not leave its
	// implied no-partial-sort flag behind when PYRO-O replaces it.
	lastWins, err := db.Optimize(sorted, WithHeuristic(PYRO), WithHeuristic(PYROO))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.Optimize(sorted, WithHeuristic(PYROO))
	if err != nil {
		t.Fatal(err)
	}
	if lastWins.Explain() != plain.Explain() {
		t.Fatalf("stale heuristic defaults leaked through:\n--- PYRO then PYRO-O:\n%s\n--- PYRO-O alone:\n%s",
			lastWins.Explain(), plain.Explain())
	}
}
