package pyro

import (
	"container/list"
	"math/bits"
	"sync"

	"pyro/internal/core"
)

// PlanCacheStats is a snapshot of the database's plan-cache counters.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Entries is the current number of cached plans.
	Entries int
}

// planKey identifies one optimization problem: the logical query shape,
// the complete optimizer options (heuristic, ablations, cost model — all
// comparable value fields), and the row-target band. Two Optimize calls
// with equal keys provably produce the identical plan, because the
// optimizer is a pure function of (tree, options) — except for RowTarget,
// which is banded: targets in the same power-of-two band reuse one plan,
// trading exact prefix-cost thresholds within a band for cache hits
// across nearby Top-K values.
type planKey struct {
	shape string
	opts  core.Options
	band  int
}

// rowTargetBand buckets a row target into power-of-two bands:
// {0}, {1}, {2}, {3,4}, {5..8}, {9..16}, ... Band 0 (no target) is its
// own band, so targeted and untargeted plans never alias.
func rowTargetBand(k int64) int {
	if k <= 0 {
		return 0
	}
	return 1 + bits.Len64(uint64(k-1))
}

// planEntry is one cached optimization result. The plan tree and stats are
// immutable after optimization, so entries are shared by reference across
// cursors.
type planEntry struct {
	key   planKey
	plan  *core.Plan
	stats core.Stats
}

// planCache is a mutex-guarded LRU over optimization results. A database
// has one; every Optimize call and every WithRowTarget re-optimization
// consults it.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *planEntry
	byKey map[planKey]*list.Element
	stats PlanCacheStats
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{cap: capacity, order: list.New(), byKey: make(map[planKey]*list.Element)}
}

// get returns the cached result for key, if present, and marks it
// most-recently used.
func (pc *planCache) get(key planKey) (*core.Plan, core.Stats, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byKey[key]
	if !ok {
		pc.stats.Misses++
		return nil, core.Stats{}, false
	}
	pc.stats.Hits++
	pc.order.MoveToFront(el)
	e := el.Value.(*planEntry)
	return e.plan, e.stats, true
}

// put stores an optimization result, evicting the least recently used
// entry beyond capacity.
func (pc *planCache) put(key planKey, plan *core.Plan, stats core.Stats) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		// A concurrent Optimize of the same query raced us; keep the
		// incumbent (the results are identical) and refresh recency.
		pc.order.MoveToFront(el)
		return
	}
	el := pc.order.PushFront(&planEntry{key: key, plan: plan, stats: stats})
	pc.byKey[key] = el
	for pc.order.Len() > pc.cap {
		last := pc.order.Back()
		pc.order.Remove(last)
		delete(pc.byKey, last.Value.(*planEntry).key)
		pc.stats.Evictions++
	}
}

// snapshot returns the cache's counters.
func (pc *planCache) snapshot() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	s := pc.stats
	s.Entries = pc.order.Len()
	return s
}
