package pyro

import (
	"context"
	"sync"
	"testing"
	"time"

	"pyro/internal/storage"
)

// servingDB builds a database with a deliberately small sort budget, a big
// clustered table whose partial-sort segments each overflow that budget
// (so its MRS cursors spill), and a small table for cheap Top-K queries.
func servingDB(t testing.TB, extra Config) *Database {
	t.Helper()
	cfg := extra
	if cfg.SortMemoryBlocks == 0 {
		cfg.SortMemoryBlocks = 16
	}
	db := Open(cfg)
	t.Cleanup(func() { storage.AssertNoLeaks(t, db.disk) })
	const n, segSize = 20_000, 10_000
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		rows[i] = []any{int64(i / segSize), int64(i * 7 % 10_000), int64(i)}
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "pad", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}
	small := make([][]any, 1000)
	for i := range small {
		small[i] = []any{int64(i % 7), int64((i * 13) % 1000)}
	}
	if err := db.CreateTable("small", []Column{
		{Name: "k", Type: Int64},
		{Name: "v", Type: Int64},
	}, ClusterOn("k"), small); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSingleCursorGetsFullGrant(t *testing.T) {
	db := segmentedDB(t, 10_000, 500)
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	st := cur.Stats()
	// A lone governed query gets exactly the configured per-sort budget —
	// the guarantee that keeps single-cursor execution identical to the
	// ungoverned engine.
	if st.GrantedBlocks != 64 {
		t.Fatalf("lone cursor granted %d blocks, want the full SortMemoryBlocks=64", st.GrantedBlocks)
	}
	if st.GrantWaits != 0 || st.GrantWait != 0 {
		t.Fatalf("lone cursor waited for memory: %+v", st)
	}
	gov := db.ServingStats().Governor
	if gov.Grants == 0 {
		t.Fatal("governor recorded no grants")
	}
	if gov.GrantedBlocks != 0 || gov.LiveGrants != 0 {
		t.Fatalf("grant not returned at cursor close: %+v", gov)
	}
}

func TestExplicitMemoryOverrideBypassesGovernor(t *testing.T) {
	db := segmentedDB(t, 5_000, 500)
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	before := db.ServingStats().Governor.Grants
	cur, err := db.Query(context.Background(), plan, WithSortMemoryBlocks(8))
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if g := cur.Stats().GrantedBlocks; g != 0 {
		t.Fatalf("pinned-budget cursor reports a grant of %d blocks, want none", g)
	}
	if after := db.ServingStats().Governor.Grants; after != before {
		t.Fatalf("pinned-budget query took a governor grant (%d -> %d)", before, after)
	}
}

func TestScanOnlyPlanTakesNoGrant(t *testing.T) {
	db := segmentedDB(t, 1_000, 100)
	plan, err := db.Optimize(db.Scan("big"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if g := cur.Stats().GrantedBlocks; g != 0 {
		t.Fatalf("sort-free scan took a %d-block grant", g)
	}
}

// TestGovernorStarvationFairness is the serving layer's liveness property:
// one huge spilling sort holding the whole pool must not starve a queue of
// small Top-K cursors. The big cursor spills its first oversized segment
// and then sits mid-stream, pinning its grant; the small queries must all
// complete promptly because spill-pressure reclaim shrinks the hoarder to
// its fair share.
func TestGovernorStarvationFairness(t *testing.T) {
	db := servingDB(t, Config{})
	bigPlan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	big, err := db.Query(context.Background(), bigPlan)
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	// Pull a few rows: the first 10k-row segment has been collected and
	// spilled (16 blocks = 64 KB cannot hold it), so the cursor now holds
	// the full 16-block grant with run-page writes on its tap.
	for i := 0; i < 10 && big.Next(); i++ {
	}
	if err := big.Err(); err != nil {
		t.Fatal(err)
	}
	if spills := big.Stats().Sorts[0].SpilledSegs; spills == 0 {
		t.Fatal("big cursor did not spill; the starvation scenario needs a spilling hoarder")
	}
	if got := db.ServingStats().Governor.GrantedBlocks; got != 16 {
		t.Fatalf("big cursor holds %d blocks, want the whole 16-block pool", got)
	}

	smallPlan, err := db.Optimize(db.Scan("small").OrderBy("v").Limit(5))
	if err != nil {
		t.Fatal(err)
	}
	const K = 6
	done := make(chan ExecStats, K)
	errs := make(chan error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			cur, err := db.Query(ctx, smallPlan)
			if err != nil {
				errs <- err
				return
			}
			rows := 0
			for cur.Next() {
				rows++
			}
			if err := cur.Close(); err != nil {
				errs <- err
				return
			}
			if rows != 5 {
				errs <- context.DeadlineExceeded
				return
			}
			done <- cur.Stats()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("small Top-K query failed or starved behind the spilling sort: %v", err)
	}
	close(done)
	for st := range done {
		if st.GrantedBlocks == 0 {
			t.Fatal("small query completed without a grant")
		}
	}
	gov := db.ServingStats().Governor
	if gov.Shrinks == 0 || gov.ReclaimedBlocks == 0 {
		t.Fatalf("spilling hoarder was never reclaimed: %+v", gov)
	}
	if gov.PeakGrantedBlocks > 16 {
		t.Fatalf("pool overcommitted: peak %d > 16", gov.PeakGrantedBlocks)
	}
	// The big cursor, shrunk but never revoked, still streams to completion.
	for big.Next() {
	}
	if err := big.Err(); err != nil {
		t.Fatal(err)
	}
	if rows := big.Stats().Rows; rows != 20_000 {
		t.Fatalf("big cursor returned %d rows after reclaim, want 20000", rows)
	}
}

func TestPlanCacheHitsAndMisses(t *testing.T) {
	db := segmentedDB(t, 2_000, 100)
	q := func() *Query { return db.Scan("big").OrderBy("g", "v") }

	if _, err := db.Optimize(q()); err != nil {
		t.Fatal(err)
	}
	base := db.ServingStats().PlanCache
	if base.Misses == 0 {
		t.Fatal("first Optimize did not miss the plan cache")
	}
	if _, err := db.Optimize(q()); err != nil {
		t.Fatal(err)
	}
	after := db.ServingStats().PlanCache
	if after.Hits != base.Hits+1 {
		t.Fatalf("repeated Optimize did not hit the cache: %+v -> %+v", base, after)
	}

	// An option that changes plan choice must miss.
	if _, err := db.Optimize(q(), WithoutPartialSort()); err != nil {
		t.Fatal(err)
	}
	ablated := db.ServingStats().PlanCache
	if ablated.Misses != after.Misses+1 {
		t.Fatalf("ablated Optimize did not miss: %+v -> %+v", after, ablated)
	}

	// Different projection expressions under identical output names must
	// not collide (the signature includes expressions, not just names).
	p1, err := db.Optimize(db.Scan("big").Project(Proj{Name: "x", Expr: Col("v")}))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.Optimize(db.Scan("big").Project(Proj{Name: "x", Expr: Add(Col("v"), Int(1))}))
	if err != nil {
		t.Fatal(err)
	}
	if p1.inner == p2.inner {
		t.Fatal("plan cache collided on queries that differ only in projection expressions")
	}

	r1, err := db.Execute(p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Execute(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Data[0][0].(int64)+1 != r2.Data[0][0].(int64) {
		t.Fatalf("colliding plans returned wrong results: %v vs %v", r1.Data[0], r2.Data[0])
	}
}

func TestPlanCacheRowTargetBands(t *testing.T) {
	db := segmentedDB(t, 2_000, 100)
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(k int64) {
		t.Helper()
		cur, err := db.Query(context.Background(), plan, WithRowTarget(k))
		if err != nil {
			t.Fatal(err)
		}
		cur.Next()
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
	}
	before := db.ServingStats().PlanCache

	run(5) // band {5..8}: first sighting must miss and re-optimize
	s1 := db.ServingStats().PlanCache
	if s1.Misses != before.Misses+1 {
		t.Fatalf("first row-target query did not miss: %+v -> %+v", before, s1)
	}

	run(6) // same band: must hit
	s2 := db.ServingStats().PlanCache
	if s2.Hits != s1.Hits+1 || s2.Misses != s1.Misses {
		t.Fatalf("same-band row target did not hit: %+v -> %+v", s1, s2)
	}

	run(100) // different band: the differing ExecOption must miss
	s3 := db.ServingStats().PlanCache
	if s3.Misses != s2.Misses+1 {
		t.Fatalf("different-band row target did not miss: %+v -> %+v", s2, s3)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := Open(Config{PlanCacheSize: -1, SortMemoryBlocks: 16})
	if err := db.CreateTable("t", []Column{{Name: "a", Type: Int64}}, nil, [][]any{{int64(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Optimize(db.Scan("t").OrderBy("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Optimize(db.Scan("t").OrderBy("a")); err != nil {
		t.Fatal(err)
	}
	if s := db.ServingStats().PlanCache; s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("disabled plan cache recorded activity: %+v", s)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	db := Open(Config{PlanCacheSize: 2, SortMemoryBlocks: 16})
	if err := db.CreateTable("t", []Column{
		{Name: "a", Type: Int64}, {Name: "b", Type: Int64}, {Name: "c", Type: Int64},
	}, nil, [][]any{{int64(1), int64(2), int64(3)}}); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"a", "b", "c"} {
		if _, err := db.Optimize(db.Scan("t").OrderBy(col)); err != nil {
			t.Fatal(err)
		}
	}
	s := db.ServingStats().PlanCache
	if s.Entries != 2 {
		t.Fatalf("cache holds %d entries, capacity is 2", s.Entries)
	}
	if s.Evictions != 1 {
		t.Fatalf("recorded %d evictions, want 1: %+v", s.Evictions, s)
	}
	// The least recently used entry (OrderBy a) is gone: re-optimizing it
	// must miss again.
	miss := s.Misses
	if _, err := db.Optimize(db.Scan("t").OrderBy("a")); err != nil {
		t.Fatal(err)
	}
	if after := db.ServingStats().PlanCache; after.Misses != miss+1 {
		t.Fatalf("evicted entry did not miss on reuse: %+v", after)
	}
}

func TestAdmissionGateQueuesSecondQuery(t *testing.T) {
	db := servingDB(t, Config{MaxConcurrentQueries: 1})
	plan, err := db.Optimize(db.Scan("small").OrderBy("v").Limit(5))
	if err != nil {
		t.Fatal(err)
	}
	first, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		stats ExecStats
		err   error
	}
	got := make(chan result, 1)
	go func() {
		cur, err := db.Query(context.Background(), plan)
		if err != nil {
			got <- result{err: err}
			return
		}
		for cur.Next() {
		}
		err = cur.Close()
		got <- result{stats: cur.Stats(), err: err}
	}()
	select {
	case r := <-got:
		t.Fatalf("second query ran through a full 1-slot gate: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.stats.QueuedTime == 0 {
			t.Fatalf("queued query reports zero QueuedTime: %+v", r.stats)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second query never admitted after the first closed")
	}
	s := db.ServingStats().Admission
	if s.Admitted != 2 || s.Waits != 1 {
		t.Fatalf("gate stats %+v, want Admitted=2 Waits=1", s)
	}
	if s.Live != 0 || s.Queued != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
}

func TestAdmissionGateHonorsCancellation(t *testing.T) {
	db := servingDB(t, Config{MaxConcurrentQueries: 1})
	plan, err := db.Optimize(db.Scan("small").OrderBy("v").Limit(5))
	if err != nil {
		t.Fatal(err)
	}
	first, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := db.Query(ctx, plan)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if err != context.Canceled {
			t.Fatalf("queued query returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not reach the queued query")
	}
}

// TestConcurrentGovernedCursors drives many concurrent governed Top-K
// cursors and checks the global invariants: the pool is never
// overcommitted, every cursor completes correctly, and all grants drain.
func TestConcurrentGovernedCursors(t *testing.T) {
	db := servingDB(t, Config{SortMemoryBlocks: 32, MaxConcurrentQueries: 8})
	plan, err := db.Optimize(db.Scan("small").OrderBy("v").Limit(3))
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				cur, err := db.Query(context.Background(), plan)
				if err != nil {
					t.Error(err)
					return
				}
				var prev int64 = -1
				rows := 0
				for cur.Next() {
					var v int64
					var k any
					if err := cur.Scan(&k, &v); err != nil {
						t.Error(err)
						return
					}
					if v < prev {
						t.Errorf("out-of-order result under concurrency: %d after %d", v, prev)
						return
					}
					prev = v
					rows++
				}
				if err := cur.Close(); err != nil {
					t.Error(err)
					return
				}
				if rows != 3 {
					t.Errorf("got %d rows, want 3", rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := db.ServingStats()
	if s.Governor.PeakGrantedBlocks > 32 {
		t.Fatalf("pool overcommitted: peak %d > 32", s.Governor.PeakGrantedBlocks)
	}
	if s.Governor.GrantedBlocks != 0 || s.Governor.LiveGrants != 0 {
		t.Fatalf("grants leaked: %+v", s.Governor)
	}
	if s.Admission.Live != 0 || s.Admission.PeakLive > 8 {
		t.Fatalf("admission slots leaked or exceeded: %+v", s.Admission)
	}
}
