package pyro

import (
	"testing"
)

// TestTopKCorrectness: LIMIT over ORDER BY returns the first K rows of the
// full ordering.
func TestTopKCorrectness(t *testing.T) {
	db := openTestDB(t)
	full, err := db.Optimize(db.Scan("items").OrderBy("i_qty", "i_order"))
	if err != nil {
		t.Fatal(err)
	}
	fullRows, err := db.Execute(full)
	if err != nil {
		t.Fatal(err)
	}
	topk, err := db.Optimize(db.Scan("items").OrderBy("i_qty", "i_order").Limit(25))
	if err != nil {
		t.Fatal(err)
	}
	kRows, err := db.Execute(topk)
	if err != nil {
		t.Fatal(err)
	}
	if len(kRows.Data) != 25 {
		t.Fatalf("top-k rows = %d, want 25", len(kRows.Data))
	}
	for i := range kRows.Data {
		for j := range kRows.Data[i] {
			if kRows.Data[i][j] != fullRows.Data[i][j] {
				t.Fatalf("top-k row %d differs from full ordering", i)
			}
		}
	}
}

// TestTopKEarlyTermination: with a clustering prefix available, the Top-K
// plan uses a pipelined partial sort and touches far less data than the
// full-sort alternative (the paper's §3.1 benefit 2).
func TestTopKEarlyTermination(t *testing.T) {
	db := Open(Config{SortMemoryBlocks: 64})
	var rows [][]any
	for i := 0; i < 50_000; i++ {
		rows = append(rows, []any{int64(i / 500), int64(i * 7 % 10_000), int64(i)})
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "pad", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}
	q := db.Scan("big").OrderBy("g", "v").Limit(10)

	partial, err := db.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	db.ResetIOStats()
	if _, err := db.Execute(partial); err != nil {
		t.Fatal(err)
	}
	ioPartial := db.IOStats().PageReads

	fullSort, err := db.Optimize(q, WithoutPartialSort())
	if err != nil {
		t.Fatal(err)
	}
	db.ResetIOStats()
	if _, err := db.Execute(fullSort); err != nil {
		t.Fatal(err)
	}
	ioFull := db.IOStats().PageReads

	// The MRS plan stops after the first segment; the SRS plan must read
	// the whole table (and its own run files) before emitting anything.
	if ioPartial*5 > ioFull {
		t.Fatalf("early termination missing: partial read %d pages, full %d", ioPartial, ioFull)
	}
}

func TestLimitValidation(t *testing.T) {
	db := openTestDB(t)
	if err := db.Scan("orders").Limit(-1).Err(); err == nil {
		t.Fatal("negative limit should error")
	}
	plan, err := db.Optimize(db.Scan("orders").Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Execute(plan)
	if err != nil || len(rows.Data) != 0 {
		t.Fatalf("limit 0: %d rows, err %v", len(rows.Data), err)
	}
	// Limit larger than input returns everything.
	plan2, err := db.Optimize(db.Scan("orders").Limit(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := db.Execute(plan2)
	if err != nil || len(rows2.Data) != 200 {
		t.Fatalf("oversized limit: %d rows", len(rows2.Data))
	}
}
