package pyro_test

import (
	"context"
	"fmt"
	"log"

	"pyro"
)

// ExampleDatabase_Query streams a Top-K result through the cursor: the
// table is clustered on (day), so ORDER BY (day, kind) plans a pipelined
// partial sort and the first rows are served after reading only the first
// day's segment — closing the cursor early abandons the rest.
func ExampleDatabase_Query() {
	db := pyro.Open(pyro.Config{SortMemoryBlocks: 64})
	var rows [][]any
	for day := 0; day < 30; day++ {
		for e := 0; e < 100; e++ {
			rows = append(rows, []any{int64(day), int64((e * 7) % 10), int64(e)})
		}
	}
	if err := db.CreateTable("events", []pyro.Column{
		{Name: "day", Type: pyro.Int64},
		{Name: "kind", Type: pyro.Int64},
		{Name: "seq", Type: pyro.Int64},
	}, pyro.ClusterOn("day"), rows); err != nil {
		log.Fatal(err)
	}

	plan, err := db.Optimize(db.Scan("events").OrderBy("day", "kind"))
	if err != nil {
		log.Fatal(err)
	}
	// Parallelism 1 keeps reading strictly demand-driven (the paper's
	// serial algorithm), so the segment count below is deterministic.
	cur, err := db.Query(context.Background(), plan, pyro.WithSortParallelism(1))
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()

	for i := 0; i < 3 && cur.Next(); i++ {
		var day, kind, seq int64
		if err := cur.Scan(&day, &kind, &seq); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day=%d kind=%d\n", day, kind)
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	cur.Close()
	st := cur.Stats()
	fmt.Printf("rows=%d of %d, segments sorted=%d of 30\n",
		st.Rows, len(rows), st.Sorts[0].Segments)
	// Output:
	// day=0 kind=0
	// day=0 kind=0
	// day=0 kind=0
	// rows=3 of 3000, segments sorted=1 of 30
}
