package pyro_test

import (
	"context"
	"fmt"
	"log"
	"sync"

	"pyro"
)

// ExampleDatabase_Query streams a Top-K result through the cursor: the
// table is clustered on (day), so ORDER BY (day, kind) plans a pipelined
// partial sort and the first rows are served after reading only the first
// day's segment — closing the cursor early abandons the rest.
func ExampleDatabase_Query() {
	db := pyro.Open(pyro.Config{SortMemoryBlocks: 64})
	var rows [][]any
	for day := 0; day < 30; day++ {
		for e := 0; e < 100; e++ {
			rows = append(rows, []any{int64(day), int64((e * 7) % 10), int64(e)})
		}
	}
	if err := db.CreateTable("events", []pyro.Column{
		{Name: "day", Type: pyro.Int64},
		{Name: "kind", Type: pyro.Int64},
		{Name: "seq", Type: pyro.Int64},
	}, pyro.ClusterOn("day"), rows); err != nil {
		log.Fatal(err)
	}

	plan, err := db.Optimize(db.Scan("events").OrderBy("day", "kind"))
	if err != nil {
		log.Fatal(err)
	}
	// Parallelism 1 keeps reading strictly demand-driven (the paper's
	// serial algorithm), so the segment count below is deterministic.
	cur, err := db.Query(context.Background(), plan, pyro.WithSortParallelism(1))
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()

	for i := 0; i < 3 && cur.Next(); i++ {
		var day, kind, seq int64
		if err := cur.Scan(&day, &kind, &seq); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day=%d kind=%d\n", day, kind)
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	cur.Close()
	st := cur.Stats()
	fmt.Printf("rows=%d of %d, segments sorted=%d of 30\n",
		st.Rows, len(rows), st.Sorts[0].Segments)
	// Output:
	// day=0 kind=0
	// day=0 kind=0
	// day=0 kind=0
	// rows=3 of 3000, segments sorted=1 of 30
}

// ExampleDatabase_concurrent serves many Top-K cursors at once through the
// serving layer: the admission gate bounds how many queries execute
// concurrently, and the sort-memory governor shares one global block pool
// across every live sort — a lone query still gets its full per-sort
// budget, concurrent ones split the pool fairly, and the pool is never
// overcommitted however many cursors race.
func ExampleDatabase_concurrent() {
	db := pyro.Open(pyro.Config{
		SortMemoryBlocks:       8,  // each query asks for 8 blocks...
		GlobalSortMemoryBlocks: 16, // ...from a shared 16-block pool
		MaxConcurrentQueries:   2,  // at most 2 queries execute at once
	})
	rows := make([][]any, 300)
	for i := range rows {
		rows[i] = []any{int64(i), int64((i * 37) % 300)}
	}
	if err := db.CreateTable("scores", []pyro.Column{
		{Name: "id", Type: pyro.Int64},
		{Name: "score", Type: pyro.Int64},
	}, pyro.ClusterOn("id"), rows); err != nil {
		log.Fatal(err)
	}

	// ORDER BY a non-clustered column forces a sort, so every query takes
	// a memory grant. All eight share one cached plan.
	plan, err := db.Optimize(db.Scan("scores").OrderBy("score").Limit(3))
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur, err := db.Query(context.Background(), plan)
			if err != nil {
				log.Fatal(err)
			}
			for cur.Next() {
			}
			if err := cur.Err(); err != nil {
				log.Fatal(err)
			}
			if err := cur.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()

	s := db.ServingStats()
	fmt.Printf("admitted=%d within gate: %v\n",
		s.Admission.Admitted, s.Admission.PeakLive <= 2)
	fmt.Printf("grants=%d pool overcommitted: %v\n",
		s.Governor.Grants, s.Governor.PeakGrantedBlocks > 16)
	// Output:
	// admitted=8 within gate: true
	// grants=8 pool overcommitted: false
}
