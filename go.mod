module pyro

go 1.24
